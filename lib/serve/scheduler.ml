(* Bounded scheduler: admission control, a shedding wait queue and
   completion tracking on top of Domain_pool.async, with a private fallback
   thread for single-core hosts.

   Jobs run on up to [cap] pool workers at once.  Excess submissions wait
   in a bounded FIFO queue; when the queue is full, or the EWMA-estimated
   queue wait already exceeds the job's deadline, the submission is *shed*
   with a [retry_after_ms] estimate instead of being queued to fail.  A
   queued job whose deadline passes while it waits is evicted promptly —
   the queue is swept at every submission and completion and by a lazy
   background sweeper tick, so eviction never waits for a running slot to
   free — its ticket resolves to [Error (Evicted _)] without ever running.

   The pool's workers execute jobs in parallel (they are separate domains);
   tickets, the queue and the running counter are the only shared state,
   each behind its own mutex.  Mutex/Condition work across domains and
   systhreads alike, so a connection thread awaiting a ticket wakes
   correctly when a worker domain resolves it. *)

module Metrics = Symref_obs.Metrics
module Domain_pool = Symref_core.Domain_pool

type 'a ticket = {
  t_lock : Mutex.t;
  t_done : Condition.t;
  mutable value : ('a, exn) result option;
}

exception Evicted of { retry_after_ms : float }

type entry = {
  e_deadline : float option;
  e_start : unit -> unit; (* run the job (caller dispatches off-lock) *)
  e_evict : float -> unit; (* resolve the ticket with [Evicted] *)
}

type t = {
  lock : Mutex.t;
  changed : Condition.t; (* running/queue shrank *)
  cap : int;
  queue_cap : int;
  mutable running : int;
  queue : entry Queue.t;
  mutable accepting : bool;
  (* EWMA of job service time (ms): the admission estimator.  Seeded
     pessimistically enough that an empty scheduler never sheds. *)
  mutable ewma_ms : float;
  (* Deadline sweeper: evicts expired queued jobs on a tick, so eviction
     never depends on a running slot freeing up.  Spawned lazily by the
     first deadline-carrying job that queues. *)
  mutable sweeper : Thread.t option;
  mutable sweeper_stop : bool;
  (* Fallback lane for machines where the domain pool has no workers. *)
  fb_lock : Mutex.t;
  fb_work : Condition.t;
  fb_queue : (unit -> unit) Queue.t;
  mutable fb_thread : Thread.t option;
  mutable fb_stop : bool;
}

type 'a submission =
  | Admitted of 'a ticket
  | Shed of { retry_after_ms : float }
  | Stopped

let create ?(capacity = 64) ?(queue = 64) ?(workers = 0) () =
  let workers =
    if workers > 0 then workers
    else Int.max 1 (Domain.recommended_domain_count () - 1)
  in
  Domain_pool.ensure workers;
  {
    lock = Mutex.create ();
    changed = Condition.create ();
    cap = Int.max 1 capacity;
    queue_cap = Int.max 0 queue;
    running = 0;
    queue = Queue.create ();
    accepting = true;
    ewma_ms = 50.;
    sweeper = None;
    sweeper_stop = false;
    fb_lock = Mutex.create ();
    fb_work = Condition.create ();
    fb_queue = Queue.create ();
    fb_thread = None;
    fb_stop = false;
  }

let fallback_loop t () =
  let rec next () =
    Mutex.lock t.fb_lock;
    let rec await () =
      match Queue.take_opt t.fb_queue with
      | Some j -> Some j
      | None ->
          if t.fb_stop then None
          else begin
            Condition.wait t.fb_work t.fb_lock;
            await ()
          end
    in
    let j = await () in
    Mutex.unlock t.fb_lock;
    match j with
    | None -> ()
    | Some j ->
        j ();
        next ()
  in
  next ()

let run_on_fallback t job =
  Mutex.lock t.fb_lock;
  if t.fb_thread = None then t.fb_thread <- Some (Thread.create (fallback_loop t) ());
  Queue.add job t.fb_queue;
  Condition.signal t.fb_work;
  Mutex.unlock t.fb_lock

let dispatch t run = if not (Domain_pool.async run) then run_on_fallback t run

(* The estimated wait (ms) before a submission arriving *now* would start:
   everything already queued, plus itself, drained at one EWMA service time
   per [cap] slots.  Also the [retry_after_ms] a shed job is told — by the
   time it retries the backlog it saw has (in estimate) drained. *)
let estimate_locked t =
  t.ewma_ms *. float_of_int (Queue.length t.queue + 1) /. float_of_int t.cap

let resolve ticket v =
  Mutex.lock ticket.t_lock;
  ticket.value <- Some v;
  Condition.broadcast ticket.t_done;
  Mutex.unlock ticket.t_lock

(* Resolve every queued entry whose deadline has already passed ([t.lock]
   held) — whether or not any slot is free, so a client blocked in [await]
   learns its fate at the deadline, not when a long job eventually
   finishes.  Evictions count only in [serve.evicted_jobs]:
   [serve.shed_jobs] is the admission-shed path, and keeping the two
   disjoint keeps them additive with [serve.jobs_rejected].  Returns how
   many entries were evicted so callers can wake waiters. *)
let evict_expired_locked t =
  if Queue.is_empty t.queue then 0
  else begin
    let now = Unix.gettimeofday () in
    let expired e =
      match e.e_deadline with Some d -> now >= d | None -> false
    in
    let keep = Queue.create () in
    let dead = ref [] in
    Queue.iter
      (fun e -> if expired e then dead := e :: !dead else Queue.add e keep)
      t.queue;
    match !dead with
    | [] -> 0
    | dead ->
        Queue.clear t.queue;
        Queue.transfer keep t.queue;
        List.iter
          (fun e ->
            Metrics.incr Metrics.serve_evicted_jobs;
            e.e_evict (estimate_locked t))
          (List.rev dead);
        List.length dead
  end

(* The sweeper thread: a coarse tick is enough — eviction precision only
   has to beat the client's own patience, not the EWMA. *)
let sweeper_loop t () =
  let rec loop () =
    Mutex.lock t.lock;
    let stop = t.sweeper_stop in
    if (not stop) && evict_expired_locked t > 0 then
      Condition.broadcast t.changed;
    Mutex.unlock t.lock;
    if not stop then begin
      Thread.delay 0.02;
      loop ()
    end
  in
  loop ()

(* Called with [t.lock] held after [running] shrank: start queued jobs while
   slots are free, evicting the ones whose deadline already passed.  Returns
   the thunks to dispatch once the lock is released. *)
let promote_locked t =
  ignore (evict_expired_locked t : int);
  let starts = ref [] in
  let rec pull () =
    if t.running < t.cap then
      match Queue.take_opt t.queue with
      | None -> ()
      | Some e ->
          t.running <- t.running + 1;
          starts := e.e_start :: !starts;
          pull ()
  in
  pull ();
  List.rev !starts

let finish t dur_ms =
  Mutex.lock t.lock;
  t.running <- t.running - 1;
  (* alpha = 0.2: reactive enough to track a load shift within a few jobs,
     smooth enough that one outlier doesn't flap the admission estimate. *)
  t.ewma_ms <- (0.8 *. t.ewma_ms) +. (0.2 *. dur_ms);
  let starts = promote_locked t in
  Condition.broadcast t.changed;
  Mutex.unlock t.lock;
  List.iter (dispatch t) starts

let submit ?deadline t f =
  let ticket =
    { t_lock = Mutex.create (); t_done = Condition.create (); value = None }
  in
  let run () =
    let t0 = Unix.gettimeofday () in
    let v = try Ok (f ()) with e -> Error e in
    resolve ticket v;
    finish t ((Unix.gettimeofday () -. t0) *. 1000.)
  in
  Mutex.lock t.lock;
  (* Each submission also sweeps the queue: with every slot pinned by a
     long job, expired entries must still resolve without waiting for a
     completion to run [promote_locked]. *)
  if evict_expired_locked t > 0 then Condition.broadcast t.changed;
  if not t.accepting then begin
    Mutex.unlock t.lock;
    Metrics.incr Metrics.serve_jobs_rejected;
    Stopped
  end
  else if t.running < t.cap then begin
    t.running <- t.running + 1;
    Mutex.unlock t.lock;
    Metrics.incr Metrics.serve_jobs_submitted;
    dispatch t run;
    Admitted ticket
  end
  else begin
    let est = estimate_locked t in
    let queue_full = Queue.length t.queue >= t.queue_cap in
    let hopeless =
      match deadline with
      | Some d -> Unix.gettimeofday () +. (est /. 1000.) >= d
      | None -> false
    in
    if queue_full || hopeless then begin
      Mutex.unlock t.lock;
      Metrics.incr Metrics.serve_jobs_rejected;
      Metrics.incr Metrics.serve_shed_jobs;
      Shed { retry_after_ms = est }
    end
    else begin
      Queue.add
        {
          e_deadline = deadline;
          e_start = run;
          e_evict =
            (fun retry_after_ms ->
              resolve ticket (Error (Evicted { retry_after_ms })));
        }
        t.queue;
      (* The first deadline-carrying entry starts the sweeper: schedulers
         that never queue deadlines never pay for the thread. *)
      if deadline <> None && t.sweeper = None && not t.sweeper_stop then
        t.sweeper <- Some (Thread.create (sweeper_loop t) ());
      Mutex.unlock t.lock;
      Metrics.incr Metrics.serve_jobs_submitted;
      Admitted ticket
    end
  end

let await ticket =
  Mutex.lock ticket.t_lock;
  let rec wait () =
    match ticket.value with
    | Some v -> v
    | None ->
        Condition.wait ticket.t_done ticket.t_lock;
        wait ()
  in
  let v = wait () in
  Mutex.unlock ticket.t_lock;
  v

let peek ticket =
  Mutex.lock ticket.t_lock;
  let v = ticket.value in
  Mutex.unlock ticket.t_lock;
  v

let pending t =
  Mutex.lock t.lock;
  let n = t.running + Queue.length t.queue in
  Mutex.unlock t.lock;
  n

let queued t =
  Mutex.lock t.lock;
  let n = Queue.length t.queue in
  Mutex.unlock t.lock;
  n

let capacity t = t.cap
let queue_capacity t = t.queue_cap

let retry_after_estimate t =
  Mutex.lock t.lock;
  let est = estimate_locked t in
  Mutex.unlock t.lock;
  est

let wait_until_below t n =
  Mutex.lock t.lock;
  while t.running + Queue.length t.queue >= n do
    Condition.wait t.changed t.lock
  done;
  Mutex.unlock t.lock

let stop t =
  Mutex.lock t.lock;
  t.accepting <- false;
  Mutex.unlock t.lock

let drain t =
  Mutex.lock t.lock;
  while t.running > 0 || not (Queue.is_empty t.queue) do
    Condition.wait t.changed t.lock
  done;
  Mutex.unlock t.lock

let shutdown t =
  stop t;
  drain t;
  Mutex.lock t.lock;
  t.sweeper_stop <- true;
  let sweeper = t.sweeper in
  t.sweeper <- None;
  Mutex.unlock t.lock;
  Option.iter Thread.join sweeper;
  Mutex.lock t.fb_lock;
  t.fb_stop <- true;
  Condition.broadcast t.fb_work;
  let th = t.fb_thread in
  t.fb_thread <- None;
  Mutex.unlock t.fb_lock;
  Option.iter Thread.join th
