(** Bounded job scheduler with admission control and load shedding, over
    {!Symref_core.Domain_pool}.

    Jobs are opaque thunks; up to [capacity] run at once, the next [queue]
    submissions wait in FIFO order, and the excess is {e shed} — refused
    with a [retry_after_ms] estimate so the caller can send a typed
    [Overloaded] backpressure reply instead of letting the daemon's memory
    grow without bound.  Admission is deadline-aware: a submission whose
    estimated queue wait (an EWMA of recent service times, scaled by the
    backlog) already exceeds its deadline is shed up front, and a queued job
    whose deadline passes while it waits is evicted promptly — swept at
    every submission, at every completion, and by a background sweeper
    tick, so eviction never waits for a running slot to free — its
    ticket resolves to [Error (Evicted _)] without the job ever running.

    Admitted jobs run on the persistent worker domains of
    {!Symref_core.Domain_pool} ({!Symref_core.Domain_pool.async}); on a
    single-core machine — where the pool has no workers — a private fallback
    thread runs them instead, so the scheduler works everywhere.

    Completion is tracked per job through a {e ticket} the submitter can
    await, and globally through {!drain}, which is what makes graceful
    shutdown possible: stop admitting, drain, then tear the transport down.

    A job thunk must not raise for expected failures — it should return a
    structured error value ({!Service} catches everything and builds error
    replies).  A thunk that does raise resolves its ticket to [Error exn]
    rather than killing the worker. *)

type t

type 'a ticket

exception Evicted of { retry_after_ms : float }
(** Resolves the ticket of a queued job whose deadline passed before it
    could start: the job never ran.  [retry_after_ms] is the drain estimate
    at eviction time — {!Daemon} maps this to the [Overloaded] reply. *)

(** What {!submit} did with the thunk. *)
type 'a submission =
  | Admitted of 'a ticket  (** running now, or waiting in the queue *)
  | Shed of { retry_after_ms : float }
      (** refused by admission control: the queue is full, or the estimated
          wait already exceeds the job's deadline — retry after the hint *)
  | Stopped  (** the scheduler is no longer accepting (shutdown) *)

val create : ?capacity:int -> ?queue:int -> ?workers:int -> unit -> t
(** [capacity] (default 64) bounds jobs running at once; [queue] (default
    64, [0] disables queueing — full capacity sheds immediately) bounds the
    submissions waiting behind them; [workers] (default
    [Domain.recommended_domain_count () - 1], at least 1) pre-sizes the
    domain pool so the first jobs do not pay spawn latency. *)

val submit : ?deadline:float -> t -> (unit -> 'a) -> 'a submission
(** [deadline] (absolute [Unix.gettimeofday] seconds) enables the
    deadline-aware paths: shed-up-front at admission, prompt eviction from
    the queue.  Counts [serve.jobs_submitted] / [serve.jobs_rejected] /
    [serve.shed_jobs] (admission sheds only) / [serve.evicted_jobs]
    (queue evictions only) in {!Symref_obs.Metrics}. *)

val await : 'a ticket -> ('a, exn) result
(** Block until the job finishes.  [Error e] only for exceptions that
    escaped the thunk, or {!Evicted} for a queued job whose deadline
    passed. *)

val peek : 'a ticket -> ('a, exn) result option
(** Non-blocking view of a ticket. *)

val pending : t -> int
(** Jobs admitted and not yet finished (running plus queued). *)

val queued : t -> int
(** Jobs waiting in the queue (admitted, not yet running). *)

val capacity : t -> int
val queue_capacity : t -> int

val retry_after_estimate : t -> float
(** The current admission estimate (ms): EWMA service time scaled by the
    backlog — what a shed submission would be told right now. *)

val wait_until_below : t -> int -> unit
(** Block until [pending t < n] — how the in-process batch sweep feeds an
    arbitrarily long file list through the bounded queue without busy
    waiting. *)

val stop : t -> unit
(** Refuse new submissions; running and queued jobs are unaffected. *)

val drain : t -> unit
(** Block until every admitted job has finished (the queue included). *)

val shutdown : t -> unit
(** [stop] + [drain] + join the sweeper and fallback threads (those that
    were spawned).
    The domain pool itself is left alone — it is process-wide and other
    subsystems ({!Symref_core.Interp}) share it. *)
