(** Bounded job scheduler over {!Symref_core.Domain_pool}.

    Jobs are opaque thunks; admission is bounded by [capacity] (queued plus
    running), the excess being refused immediately so the caller can send a
    backpressure reply instead of letting the daemon's memory grow without
    bound.  Admitted jobs run on the persistent worker domains of
    {!Symref_core.Domain_pool} ({!Symref_core.Domain_pool.async}); on a
    single-core machine — where the pool has no workers — a private fallback
    thread runs them instead, so the scheduler works everywhere.

    Completion is tracked per job through a {e ticket} the submitter can
    await, and globally through {!drain}, which is what makes graceful
    shutdown possible: stop admitting, drain, then tear the transport down.

    A job thunk must not raise for expected failures — it should return a
    structured error value ({!Service} catches everything and builds error
    replies).  A thunk that does raise resolves its ticket to [Error exn]
    rather than killing the worker. *)

type t

type 'a ticket

val create : ?capacity:int -> ?workers:int -> unit -> t
(** [capacity] (default 64) bounds jobs in flight; [workers] (default
    [Domain.recommended_domain_count () - 1], at least 1) pre-sizes the
    domain pool so the first jobs do not pay spawn latency. *)

val submit : t -> (unit -> 'a) -> 'a ticket option
(** [None] when the scheduler is full or no longer accepting — the caller
    replies [Busy].  Counts [serve.jobs_submitted] / [serve.jobs_rejected]
    in {!Symref_obs.Metrics}. *)

val await : 'a ticket -> ('a, exn) result
(** Block until the job finishes.  [Error e] only for exceptions that
    escaped the thunk. *)

val peek : 'a ticket -> ('a, exn) result option
(** Non-blocking view of a ticket. *)

val pending : t -> int
(** Jobs admitted and not yet finished. *)

val capacity : t -> int

val wait_until_below : t -> int -> unit
(** Block until [pending t < n] — how the in-process batch sweep feeds an
    arbitrarily long file list through the bounded queue without busy
    waiting. *)

val stop : t -> unit
(** Refuse new submissions; running jobs are unaffected. *)

val drain : t -> unit
(** Block until every admitted job has finished. *)

val shutdown : t -> unit
(** [stop] + [drain] + join the fallback thread (if one was spawned).
    The domain pool itself is left alone — it is process-wide and other
    subsystems ({!Symref_core.Interp}) share it. *)
