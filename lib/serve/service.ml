(* Job execution for the serve subsystem.

   A worker runs [run_job] from start to finish: read, parse, canonicalise,
   resolve the drive and the probe, look the canonical key up in the cache,
   compute on a miss, store the rendered payload.  Every expected failure is
   mapped to a structured reply here, so neither the daemon loop nor the
   batch sweep ever sees an exception from a job. *)

module N = Symref_circuit.Netlist
module Element = Symref_circuit.Element
module Transform = Symref_circuit.Transform
module Nodal = Symref_mna.Nodal
module Parser = Symref_spice.Parser
module Writer = Symref_spice.Writer
module Reference = Symref_core.Reference
module Adaptive = Symref_core.Adaptive
module Poles = Symref_core.Poles
module Sym = Symref_symbolic.Sym
module Nested = Symref_symbolic.Nested
module Sbg = Symref_symbolic.Sbg
module Pipeline = Symref_simplify.Pipeline
module Budget = Symref_simplify.Budget
module Certificate = Symref_simplify.Certificate
module Grid = Symref_numeric.Grid
module Ef = Symref_numeric.Extfloat
module Json = Symref_obs.Json
module Metrics = Symref_obs.Metrics
module Snapshot = Symref_obs.Snapshot
module Inject = Symref_fault.Inject

type config = {
  workers : int;
  capacity : int;
  queue : int;
  cache_bytes : int;
  default_timeout_ms : int option;
  disk_cache_dir : string option;
  backlog : int;
  socket_mode : int option;
}

let default_config =
  {
    workers = 0;
    capacity = 64;
    queue = 64;
    cache_bytes = 64 * 1024 * 1024;
    default_timeout_ms = None;
    disk_cache_dir = None;
    backlog = 16;
    socket_mode = None;
  }

type t = {
  cfg : config;
  cache : Cache.t;
  disk : Disk_cache.t option;
  sched : Scheduler.t;
}

let create ?(config = default_config) () =
  {
    cfg = config;
    cache = Cache.create ~max_bytes:config.cache_bytes ();
    disk = Option.map (fun dir -> Disk_cache.create ~dir) config.disk_cache_dir;
    sched =
      Scheduler.create ~capacity:config.capacity ~queue:config.queue
        ~workers:config.workers ();
  }

exception Deadline_exceeded

let config t = t.cfg
let scheduler t = t.sched
let cache t = t.cache
let disk_cache t = t.disk

(* --- input/output resolution --- *)

let parse_input circuit s =
  let split_pair v =
    match String.split_on_char ',' v with
    | [ a; b ] -> (a, b)
    | _ -> Errors.bad_spec "input" "expected two comma-separated node names"
  in
  match String.index_opt s ':' with
  | None -> (
      match N.find_element circuit s with
      | Some _ -> Nodal.Vsrc_element s
      | None -> Errors.bad_spec "input" "no element named %s in the netlist" s)
  | Some i -> (
      let kind = String.sub s 0 i
      and v = String.sub s (i + 1) (String.length s - i - 1) in
      match kind with
      | "diff" ->
          let p, m = split_pair v in
          Nodal.V_diff (p, m)
      | "node" -> Nodal.V_single v
      | "current" -> Nodal.I_single v
      | k -> Errors.bad_spec "input" "unknown input kind %s" k)

let parse_output s =
  match String.split_on_char ',' s with
  | [ a ] -> Nodal.Out_node a
  | [ a; b ] -> Nodal.Out_diff (a, b)
  | _ -> Errors.bad_spec "output" "output must be NODE or NODE,NODE"

(* Grounded voltage sources, each as (name, non-ground node, effective drive
   at that node) — the sign flips when the source hangs off ground by its
   positive terminal. *)
let grounded_vsrcs circuit =
  List.filter_map
    (fun (e : Element.t) ->
      match e.Element.kind with
      | Element.Vsrc { p; m; volts } when p = 0 && m <> 0 ->
          Some (e.Element.name, N.node_name circuit m, -.volts)
      | Element.Vsrc { p; m; volts } when m = 0 && p <> 0 ->
          Some (e.Element.name, N.node_name circuit p, volts)
      | _ -> None)
    (N.elements circuit)

let vsrc_count circuit =
  List.length
    (List.filter
       (fun (e : Element.t) ->
         match e.Element.kind with Element.Vsrc _ -> true | _ -> false)
       (N.elements circuit))

let auto_input circuit =
  let grounded = grounded_vsrcs circuit in
  match (grounded, vsrc_count circuit) with
  | [ (name, _, _) ], 1 ->
      (* The classic single-drive netlist: use the source itself. *)
      (circuit, Nodal.Vsrc_element name, name)
  | [ (n1, node1, v1); (n2, node2, v2) ], 2
    when v1 *. v2 < 0. && Float.abs (Float.abs v1 -. Float.abs v2) = 0. ->
      (* An antisymmetric source pair (the uA741 sample netlist): remove
         both and drive the pair differentially. *)
      let p, m = if v1 > 0. then (node1, node2) else (node2, node1) in
      let circuit = N.remove_element (N.remove_element circuit n1) n2 in
      (circuit, Nodal.V_diff (p, m), Printf.sprintf "diff:%s,%s" p m)
  | _, 0 -> (
      match
        List.find_opt (fun n -> N.node_id circuit n <> None) [ "in"; "vin" ]
      with
      | Some n -> (circuit, Nodal.V_single n, "node:" ^ n)
      | None ->
          Errors.bad_spec "input"
            "cannot auto-detect the input: no voltage source and no node \
             named in/vin (pass input explicitly)")
  | _ ->
      Errors.bad_spec "input"
        "cannot auto-detect the input: the voltage sources are not a single \
         grounded drive or an antisymmetric grounded pair (pass input \
         explicitly)"

let auto_output circuit =
  match
    List.find_opt (fun n -> N.node_id circuit n <> None) [ "out"; "vout"; "output" ]
  with
  | Some n -> (Nodal.Out_node n, n)
  | None ->
      let last = N.node_count circuit in
      if last = 0 then
        Errors.bad_spec "output" "cannot auto-detect the output: no nodes"
      else
        let n = N.node_name circuit last in
        (Nodal.Out_node n, n)

let resolve_io circuit ~input ~output =
  let circuit, input, input_desc =
    if input = "auto" then auto_input circuit
    else (circuit, parse_input circuit input, input)
  in
  let output, output_desc =
    match output with
    | Some s -> (parse_output s, s)
    | None -> auto_output circuit
  in
  (circuit, input, output, input_desc, output_desc)

(* --- cache keys --- *)

let cache_key ~canonical (job : Protocol.job) ~input_desc ~output_desc =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            canonical;
            Protocol.analysis_to_string job.Protocol.analysis;
            input_desc;
            output_desc;
            string_of_int job.Protocol.sigma;
            Printf.sprintf "%.17g" job.Protocol.r;
          ]))

(* --- payload builders --- *)

let str s = Json.Str s
let num x = Json.Num x
let inum i = Json.Num (float_of_int i)

(* Coefficients travel as extended-float strings: the representation is
   exact (no double rounding on the wire) and trivially bit-stable. *)
let coeff_array (r : Adaptive.result) =
  Json.Arr (Array.to_list (Array.map (fun v -> str (Ef.to_string v)) r.Adaptive.coeffs))

let side_fields (r : Adaptive.result) =
  [
    ("order", inum r.Adaptive.effective_order);
    ("passes", inum r.Adaptive.passes);
    ("evaluations", inum r.Adaptive.evaluations);
    ("converged", Json.Bool r.Adaptive.converged);
  ]

(* The per-job health verdict (see {!Reference.health}): convergence, an
   independent residual probe, and the recovery counters.  Costs a handful
   of extra LU evaluations per computed (not cached) job. *)
let health_json (t : Reference.t) =
  let h = Reference.health t in
  Json.Obj
    [
      ("converged", Json.Bool h.Reference.converged);
      ("verified", Json.Bool h.Reference.verified);
      ("max_residual", num h.Reference.max_residual);
      ("probes", inum h.Reference.probes);
      ("singular_retries", inum h.Reference.singular_retries);
      ("nonfinite_retries", inum h.Reference.nonfinite_retries);
      ("retry_giveups", inum h.Reference.retry_giveups);
      ("healthy", Json.Bool h.Reference.healthy);
    ]

let coeffs_fields (t : Reference.t) =
  [
    ("num", coeff_array t.Reference.num);
    ("den", coeff_array t.Reference.den);
    ("num_info", Json.Obj (side_fields t.Reference.num));
    ("den_info", Json.Obj (side_fields t.Reference.den));
    ("dc_gain", num (Reference.dc_gain t));
  ]

let pass_reports (r : Adaptive.result) =
  Json.Arr
    (List.map
       (fun (b : Adaptive.band_report) ->
         Json.Obj
           [
             ("pass", inum b.Adaptive.pass);
             ("points", inum b.Adaptive.points);
             ("evaluations", inum b.Adaptive.evaluations);
             ("fresh", inum b.Adaptive.fresh);
           ])
       r.Adaptive.reports)

let payload (job : Protocol.job) ~input_desc ~output_desc (t : Reference.t) =
  let common =
    [
      ("analysis", str (Protocol.analysis_to_string job.Protocol.analysis));
      ("input", str input_desc);
      ("output", str output_desc);
      ("health", health_json t);
    ]
  in
  match job.Protocol.analysis with
  | Protocol.Simplify _ ->
      (* Dispatched to [simplify_payload] before any reference exists. *)
      invalid_arg "Service.payload: simplify does not use the reference payload"
  | Protocol.Reference -> Json.Obj (common @ coeffs_fields t)
  | Protocol.Adaptive ->
      Json.Obj
        (common @ coeffs_fields t
        @ [
            ("num_reports", pass_reports t.Reference.num);
            ("den_reports", pass_reports t.Reference.den);
          ])
  | Protocol.Bode { from_hz; to_hz; per_decade } ->
      let freqs = Grid.decades ~start:from_hz ~stop:to_hz ~per_decade in
      let points =
        Array.to_list
          (Array.map
             (fun (p : Reference.bode_point) ->
               Json.Obj
                 [
                   ("freq_hz", num p.Reference.freq_hz);
                   ("mag_db", num p.Reference.mag_db);
                   ("phase_deg", num p.Reference.phase_deg);
                 ])
             (Reference.bode t freqs))
      in
      Json.Obj (common @ [ ("points", Json.Arr points) ])
  | Protocol.Poles ->
      let a = Poles.analyse t in
      let cplx z = Json.Arr [ num z.Complex.re; num z.Complex.im ] in
      let roots zs = Json.Arr (Array.to_list (Array.map cplx zs)) in
      Json.Obj
        (common
        @ [
            ("poles", roots a.Poles.poles);
            ("zeros", roots a.Poles.zeros);
            ("stable", Json.Bool a.Poles.stable);
            ( "resonances",
              Json.Arr
                (List.map
                   (fun (r : Poles.resonance) ->
                     Json.Obj
                       [ ("freq_hz", num r.Poles.freq_hz); ("q", num r.Poles.q) ])
                   a.Poles.resonances) );
          ])

(* The simplify payload: simplified expressions (flat and nested forms),
   per-stage removal logs and the error certificate.  Rendered from the
   same deterministic printers as everything else, so the stored string
   replays bit-identically from either cache layer. *)
let simplify_payload (job : Protocol.job) ~input_desc ~output_desc
    (r : Pipeline.result) =
  let removal (rm : Sbg.removal) =
    Json.Obj
      [
        ("element", str rm.Sbg.element);
        ( "action",
          str (match rm.Sbg.action with Sbg.Opened -> "opened" | Sbg.Shorted -> "shorted") );
        ("delta_db", num rm.Sbg.delta_db);
        ("delta_deg", num rm.Sbg.delta_deg);
        ("error_db", num rm.Sbg.error_db);
        ("error_deg", num rm.Sbg.error_deg);
      ]
  in
  let sdg_side (rep : Symref_simplify.Pipeline.result) get =
    let s : Symref_symbolic.Sdg.report = get rep in
    Json.Obj
      [
        ("total_terms", inum s.Symref_symbolic.Sdg.total_terms);
        ("kept_terms", inum s.Symref_symbolic.Sdg.kept_terms);
      ]
  in
  Json.Obj
    [
      ("analysis", str (Protocol.analysis_to_string job.Protocol.analysis));
      ("input", str input_desc);
      ("output", str output_desc);
      ("health", health_json r.Pipeline.reference);
      ( "elements",
        Json.Obj
          [
            ("before", inum r.Pipeline.elements_before);
            ("after", inum r.Pipeline.elements_after);
          ] );
      ("dim", inum r.Pipeline.dim);
      ( "exact_terms",
        Json.Obj
          [
            ("num", inum r.Pipeline.exact_num_terms);
            ("den", inum r.Pipeline.exact_den_terms);
          ] );
      ( "terms",
        Json.Obj
          [ ("num", inum r.Pipeline.num_terms); ("den", inum r.Pipeline.den_terms) ]
      );
      ("num", str (Sym.to_string r.Pipeline.num));
      ("den", str (Sym.to_string r.Pipeline.den));
      ("num_nested", str (Nested.to_string (Nested.nest r.Pipeline.num)));
      ("den_nested", str (Nested.to_string (Nested.nest r.Pipeline.den)));
      ( "sbg",
        Json.Obj
          [
            ("removals", Json.Arr (List.map removal r.Pipeline.sbg.Sbg.removals));
            ("error_db", num r.Pipeline.sbg.Sbg.error_db);
            ("error_deg", num r.Pipeline.sbg.Sbg.error_deg);
            ("candidates", inum r.Pipeline.sbg.Sbg.candidates);
            ("trials", inum r.Pipeline.sbg.Sbg.trials);
          ] );
      ( "sdg",
        Json.Obj
          [
            ("num", sdg_side r (fun x -> x.Pipeline.sdg_num));
            ("den", sdg_side r (fun x -> x.Pipeline.sdg_den));
          ] );
      ( "sag",
        Json.Obj
          [
            ("total_terms", inum r.Pipeline.sag.Symref_symbolic.Sag.total_terms);
            ("kept_terms", inum r.Pipeline.sag.Symref_symbolic.Sag.kept_terms);
            ("dropped", inum r.Pipeline.sag.Symref_symbolic.Sag.dropped);
            ("max_error", num r.Pipeline.sag.Symref_symbolic.Sag.max_error);
          ] );
      ("attempts", inum r.Pipeline.attempts);
      ("fallback", Json.Bool r.Pipeline.fallback);
      ("certificate", Certificate.to_json r.Pipeline.certificate);
    ]

(* --- job execution --- *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let run_job t ?deadline (job : Protocol.job) =
  let id = job.Protocol.id in
  let check () =
    match deadline with
    | Some d when Unix.gettimeofday () >= d -> raise Deadline_exceeded
    | _ -> ()
  in
  let failed kind message =
    Metrics.incr Metrics.serve_jobs_failed;
    Protocol.error ~id ~kind message
  in
  try
    check ();
    let source =
      match job.Protocol.netlist with
      | `Text s -> s
      | `Path p -> read_file p
    in
    let circuit = Parser.parse_string source in
    let circuit = Transform.inductors_to_gyrators circuit in
    let circuit, input, output, input_desc, output_desc =
      resolve_io circuit ~input:job.Protocol.input ~output:job.Protocol.output
    in
    let canonical = Writer.to_string circuit in
    let key = cache_key ~canonical job ~input_desc ~output_desc in
    match Cache.find t.cache ~key with
    | Some stored ->
        Metrics.incr Metrics.serve_jobs_completed;
        Protocol.ok ~id ~cached:true (Json.parse stored)
    | None -> (
        (* Layered lookup: the persistent on-disk cache sits under the LRU,
           so a hit survives restarts and is shared across the fleet's
           processes.  The stored string is replayed verbatim either way —
           bit-identical to the reply that first produced it. *)
        let disk_hit =
          match t.disk with
          | None -> None
          | Some d -> Disk_cache.find d ~key
        in
        match disk_hit with
        | Some stored ->
            Cache.add t.cache ~key stored;
            Metrics.incr Metrics.serve_jobs_completed;
            Protocol.ok ~id ~cached:true (Json.parse stored)
        | None ->
            let body =
              match job.Protocol.analysis with
              | Protocol.Simplify
                  { budget_db; budget_deg; from_hz; to_hz; per_decade } ->
                  (* The pipeline generates its own references (full and
                     pruned circuit) and verifies over the request's grid. *)
                  let freqs = Grid.decades ~start:from_hz ~stop:to_hz ~per_decade in
                  let budget = Budget.v ~db:budget_db ~deg:budget_deg () in
                  let config =
                    {
                      Pipeline.default_config with
                      Pipeline.sigma = job.Protocol.sigma;
                      r = job.Protocol.r;
                    }
                  in
                  let result =
                    Pipeline.run ~config ~check circuit ~input ~output ~budget
                      ~freqs
                  in
                  simplify_payload job ~input_desc ~output_desc result
              | _ ->
                  let config =
                    { Adaptive.default_config with Adaptive.sigma = job.Protocol.sigma; r = job.Protocol.r }
                  in
                  let reference = Reference.generate ~config ~check circuit ~input ~output in
                  payload job ~input_desc ~output_desc reference
            in
            let rendered = Json.to_string body in
            Cache.add t.cache ~key rendered;
            Option.iter (fun d -> Disk_cache.store d ~key rendered) t.disk;
            Metrics.incr Metrics.serve_jobs_completed;
            Protocol.ok ~id body)
  with
  | Deadline_exceeded ->
      Metrics.incr Metrics.serve_jobs_timeout;
      Protocol.error ~id ~status:Protocol.Timeout ~kind:"timeout"
        "job exceeded its wall-clock budget"
  | Parser.Parse_error { line; message } ->
      let where =
        match job.Protocol.netlist with `Path p -> p | `Text _ -> "<inline>"
      in
      failed "parse" (Printf.sprintf "%s:%d: %s" where line message)
  | Nodal.Unsupported m -> failed "unsupported" ("unsupported circuit: " ^ m)
  | Pipeline.Symbolic_limit { dim; limit } ->
      failed "symbolic_limit"
        (Printf.sprintf
           "pruned circuit dimension %d exceeds the symbolic limit %d; \
            simplify needs a circuit (after pruning) of dimension <= %d"
           dim limit limit)
  | Errors.Error e -> failed (Errors.kind e) (Errors.message e)
  | Inject.Injected m -> failed "injected" m
  | Failure m -> failed "invalid" m
  | Invalid_argument m -> failed "invalid" m
  | Sys_error m -> failed "io" m
  | e -> failed "internal" (Printexc.to_string e)

let submit t (job : Protocol.job) =
  let timeout_ms =
    match job.Protocol.timeout_ms with
    | Some _ as s -> s
    | None -> t.cfg.default_timeout_ms
  in
  let deadline =
    Option.map (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.)) timeout_ms
  in
  match Scheduler.submit ?deadline t.sched (fun () -> run_job t ?deadline job) with
  | Scheduler.Admitted ticket -> `Ticket ticket
  | Scheduler.Shed { retry_after_ms } ->
      `Rejected
        (Protocol.overloaded ~id:job.Protocol.id ~retry_after_ms
           "job shed by admission control, retry after the hint")
  | Scheduler.Stopped ->
      `Rejected
        (Protocol.error ~id:job.Protocol.id ~status:Protocol.Busy ~kind:"busy"
           "daemon is shutting down, retry elsewhere")

let stats_json t =
  Json.Obj
    ([
       ("version", str Version.version);
       ("cache", Cache.stats_json t.cache);
     ]
    @ (match t.disk with
      | Some d -> [ ("disk_cache", Disk_cache.stats_json d) ]
      | None -> [])
    @ [
      ( "scheduler",
        Json.Obj
          [
            ("pending", inum (Scheduler.pending t.sched));
            ("queued", inum (Scheduler.queued t.sched));
            ("capacity", inum (Scheduler.capacity t.sched));
            ("queue_capacity", inum (Scheduler.queue_capacity t.sched));
            ("retry_after_ms", num (Scheduler.retry_after_estimate t.sched));
          ] );
      ("counters", Snapshot.to_json (Snapshot.capture ()));
    ])

let drain t = Scheduler.drain t.sched
let shutdown t = Scheduler.shutdown t.sched
