(** Job execution: netlist → analysis → reply, through the result cache.

    One {!t} owns a {!Cache.t} and a {!Scheduler.t}; the daemon and the
    in-process batch sweep are both thin shells around it.  Everything a
    job can do wrong — unreadable file, parse error with its [file:line]
    diagnostic, circuit outside the nodal class, singular matrix, deadline
    exceeded — comes back as a structured {!Protocol.reply}; nothing
    escapes a worker. *)

type config = {
  workers : int;  (** domain-pool size hint; [0] = cores - 1 *)
  capacity : int;  (** jobs running at once (see {!Scheduler}) *)
  queue : int;
      (** submissions waiting behind them; the excess is shed with a typed
          [Overloaded] reply carrying [retry_after_ms] *)
  cache_bytes : int;  (** result-cache byte budget *)
  default_timeout_ms : int option;
      (** applied to jobs that do not carry their own [timeout_ms] *)
  disk_cache_dir : string option;
      (** persistent {!Disk_cache} directory layered under the LRU; [None]
          keeps the cache purely in-memory *)
  backlog : int;  (** listen(2) backlog of the daemon's sockets *)
  socket_mode : int option;
      (** chmod mask applied to a Unix listening socket (e.g. [0o600]);
          [None] keeps the process umask's result *)
}

val default_config : config
(** 0 workers (auto), capacity 64, queue 64, 64 MiB cache, no default
    timeout, no disk cache, backlog 16, default socket permissions. *)

type t

val create : ?config:config -> unit -> t

val config : t -> config

exception Deadline_exceeded
(** Raised by the cooperative check inside a job whose wall-clock budget —
    measured from {e admission}, so queueing time counts — has expired. *)

(** {1 Input/output resolution}

    Shared with the CLI so [symref coeffs] and a serve job interpret
    the same strings identically. *)

val parse_input : Symref_circuit.Netlist.t -> string -> Symref_mna.Nodal.input
(** CLI input syntax: an element name, [diff:P,M], [node:P], [current:P].
    @raise Errors.Error [Bad_spec] on unknown elements or malformed specs. *)

val parse_output : string -> Symref_mna.Nodal.output
(** [NODE] or [P,M].  @raise Errors.Error [Bad_spec] on malformed specs. *)

val resolve_io :
  Symref_circuit.Netlist.t ->
  input:string ->
  output:string option ->
  Symref_circuit.Netlist.t * Symref_mna.Nodal.input * Symref_mna.Nodal.output * string * string
(** [(circuit', input, output, input_desc, output_desc)].  [input = "auto"]
    detects the drive: a unique grounded voltage source; else a grounded
    [+x/-x] source pair, which is {e removed} and becomes the differential
    drive (the µA741 sample netlist pattern); else a node named [in]/[vin].
    [output = None] prefers a node named [out]/[vout]/[output], falling
    back to the last node the netlist introduced.  The descriptors are the
    canonical CLI spellings used in cache keys and reply payloads.
    @raise Errors.Error [Bad_spec] when nothing matches. *)

(** {1 Jobs} *)

val cache_key : canonical:string -> Protocol.job -> input_desc:string -> output_desc:string -> string
(** MD5 hex over the canonicalised netlist text and every
    value-relevant parameter (analysis, resolved input/output, sigma, r).
    Timeouts and ids are excluded: they do not change the answer. *)

val run_job : t -> ?deadline:float -> Protocol.job -> Protocol.reply
(** Execute synchronously on the calling thread (used by workers and by
    anyone who wants the service without the scheduler). *)

val submit : t -> Protocol.job -> [ `Ticket of Protocol.reply Scheduler.ticket | `Rejected of Protocol.reply ]
(** Admit through the bounded queue.  [`Rejected] carries the ready-made
    backpressure reply: [Overloaded] (with [retry_after_ms]) when admission
    control shed the job, [Busy] when the scheduler is shutting down.  The
    job's deadline starts now — queueing time counts against it, and a
    queued job whose deadline passes is evicted without running (its
    awaited reply is the same [Overloaded]). *)

val scheduler : t -> Scheduler.t
val cache : t -> Cache.t

val disk_cache : t -> Disk_cache.t option
(** The persistent layer, when [disk_cache_dir] was configured. *)

val stats_json : t -> Symref_obs.Json.t
(** [{version; cache; scheduler; counters}] — cache gauges are always
    live; the counter snapshot is whatever {!Symref_obs.Metrics} has
    collected (zeros while disabled). *)

val drain : t -> unit
(** Wait for every admitted job to finish. *)

val shutdown : t -> unit
(** Stop admitting, drain, release the scheduler's fallback thread. *)
