(* Process supervisor for a worker fleet.

   One slot per worker.  The supervisor spawns each slot via a caller
   callback (it never knows what a worker *is* — [symref fleet] passes an
   exec of [symref serve], the tests pass /bin/sh), reaps exits with
   non-blocking waitpid, and restarts crashed slots after a capped
   exponential backoff with deterministic jitter.  Crashes inside a
   sliding window count against a per-slot budget; a slot that exhausts
   it is given up — a worker that can never start (bad directory, port
   taken by a stranger) must not burn CPU forever, and the rest of the
   fleet keeps serving without it.

   Shutdown escalates: a caller-supplied polite notify (the protocol
   Shutdown request) first, SIGTERM for whoever ignored it, SIGKILL for
   whoever ignored that — each rung separated by the grace period, and
   every child is reaped before [stop] returns, so no zombies outlive the
   supervisor. *)

module Json = Symref_obs.Json
module Metrics = Symref_obs.Metrics

type config = {
  restart_delay_ms : float;  (* backoff base after the first crash *)
  max_restart_delay_ms : float;
  crash_budget : int;  (* crashes within the window before giving up *)
  crash_window_s : float;
}

let default_config =
  {
    restart_delay_ms = 100.;
    max_restart_delay_ms = 5_000.;
    crash_budget = 5;
    crash_window_s = 30.;
  }

type slot_state =
  | Running of int  (** pid *)
  | Backing_off of { until : float }
  | Given_up

type slot = {
  index : int;
  mutable state : slot_state;
  mutable crashes : float list;  (* recent crash times, newest first *)
  mutable spawns : int;  (* total spawns, salts the backoff jitter *)
}

type t = {
  config : config;
  spawn : slot:int -> int;
  slots : slot array;
  lock : Mutex.t;
  mutable stopping : bool;
  mutable restarts : int;
}

let create ?(config = default_config) ~slots ~spawn () =
  if slots < 1 then invalid_arg "Supervisor.create: slots must be >= 1";
  if config.crash_budget < 1 then
    invalid_arg "Supervisor.create: crash_budget must be >= 1";
  {
    config;
    spawn;
    slots =
      Array.init slots (fun index ->
          { index; state = Given_up; crashes = []; spawns = 0 });
    lock = Mutex.create ();
    stopping = false;
    restarts = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  let v = try f () with e -> Mutex.unlock t.lock; raise e in
  Mutex.unlock t.lock;
  v

(* A signal (the fleet front fields SIGTERM) must never unwind the
   monitor loop or a reap wait: an interrupted nap just ends early. *)
let sleepf s =
  try Unix.sleepf s with Unix.Unix_error (Unix.EINTR, _, _) -> ()

let slots t = Array.length t.slots

let slot_state t i = with_lock t (fun () -> t.slots.(i).state)

let restarts t = with_lock t (fun () -> t.restarts)

let stopping t = with_lock t (fun () -> t.stopping)

let spawn_slot t (s : slot) =
  s.spawns <- s.spawns + 1;
  let pid = t.spawn ~slot:s.index in
  s.state <- Running pid

let start t =
  with_lock t (fun () ->
      Array.iter
        (fun s -> match s.state with Given_up -> spawn_slot t s | _ -> ())
        t.slots)

(* Backoff after the [n]th recent crash: base * 2^(n-1), capped, stretched
   by the same deterministic jitter the router's prober uses — pure in
   (slot, spawn count), so a replayed supervision schedule is identical. *)
let backoff_s t (s : slot) recent =
  Float.min t.config.max_restart_delay_ms
    (t.config.restart_delay_ms
    *. Float.pow 2. (float_of_int (Int.min (recent - 1) 10)))
  /. 1000.
  *. Router.probe_jitter ~salt:s.index s.spawns

let record_crash t (s : slot) now =
  let window = now -. t.config.crash_window_s in
  s.crashes <- now :: List.filter (fun c -> c > window) s.crashes;
  let recent = List.length s.crashes in
  if recent > t.config.crash_budget then begin
    s.state <- Given_up;
    Metrics.incr Metrics.fleet_giveups
  end
  else s.state <- Backing_off { until = now +. backoff_s t s recent }

(* One supervision beat: reap any slot whose child exited (restart goes on
   the backoff schedule), and spawn any slot whose backoff has passed.
   Non-blocking throughout; callers loop this a few times a second. *)
let step ?now t =
  let now = match now with Some n -> n | None -> Unix.gettimeofday () in
  with_lock t (fun () ->
      Array.iter
        (fun s ->
          match s.state with
          | Given_up -> ()
          | Running pid -> (
              if not t.stopping then
                match Unix.waitpid [ Unix.WNOHANG ] pid with
                | 0, _ -> () (* still running *)
                | _, _ -> record_crash t s now
                | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
                    (* Reaped elsewhere (a stop raced us): treat as exit. *)
                    record_crash t s now
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
          | Backing_off { until } ->
              if (not t.stopping) && now >= until then begin
                t.restarts <- t.restarts + 1;
                Metrics.incr Metrics.fleet_restarts;
                spawn_slot t s
              end)
        t.slots)

let run ?(poll_interval_ms = 50) t =
  start t;
  Thread.create
    (fun () ->
      while not (stopping t) do
        step t;
        sleepf (float_of_int poll_interval_ms /. 1000.)
      done)
    ()

let kill_quietly pid signal = try Unix.kill pid signal with Unix.Unix_error _ -> ()

(* Reap [pids] without blocking more than [grace] seconds total; returns
   the survivors. *)
let reap_within pids grace =
  let deadline = Unix.gettimeofday () +. grace in
  let rec loop pending =
    if pending = [] then []
    else
      let still =
        List.filter
          (fun pid ->
            match Unix.waitpid [ Unix.WNOHANG ] pid with
            | 0, _ -> true
            | _, _ -> false
            | exception Unix.Unix_error (Unix.ECHILD, _, _) -> false
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> true)
          pending
      in
      if still = [] || Unix.gettimeofday () >= deadline then still
      else begin
        sleepf 0.02;
        loop still
      end
  in
  loop pids

let stop ?(grace_s = 2.0) ?notify t =
  let running =
    with_lock t (fun () ->
        t.stopping <- true;
        Array.fold_left
          (fun acc s ->
            match s.state with
            | Running pid -> (s, pid) :: acc
            | Backing_off _ | Given_up ->
                s.state <- Given_up;
                acc)
          [] t.slots)
  in
  (* Rung 1: the polite ask (protocol Shutdown, when the caller knows how
     to speak to its workers). *)
  (match notify with
  | None -> ()
  | Some f ->
      List.iter
        (fun (s, pid) ->
          try f ~slot:s.index ~pid with _ -> ())
        running);
  let pids = List.map snd running in
  let after_notify = reap_within pids (if notify = None then 0. else grace_s) in
  (* Rung 2: SIGTERM whoever ignored the ask. *)
  List.iter (fun pid -> kill_quietly pid Sys.sigterm) after_notify;
  let after_term = reap_within after_notify grace_s in
  (* Rung 3: SIGKILL is not ignorable; the final reap may block briefly
     but cannot hang. *)
  List.iter (fun pid -> kill_quietly pid Sys.sigkill) after_term;
  List.iter
    (fun pid ->
      try ignore (Unix.waitpid [] pid)
      with Unix.Unix_error _ -> ())
    after_term;
  with_lock t (fun () ->
      Array.iter (fun s -> s.state <- Given_up) t.slots)

let stats_json t =
  with_lock t (fun () ->
      let per_slot =
        Array.to_list
          (Array.map
             (fun s ->
               let state, pid =
                 match s.state with
                 | Running pid -> ("running", float_of_int pid)
                 | Backing_off _ -> ("backing_off", -1.)
                 | Given_up -> ("given_up", -1.)
               in
               Json.Obj
                 [
                   ("slot", Json.Num (float_of_int s.index));
                   ("state", Json.Str state);
                   ("pid", Json.Num pid);
                   ("spawns", Json.Num (float_of_int s.spawns));
                   ( "recent_crashes",
                     Json.Num (float_of_int (List.length s.crashes)) );
                 ])
             t.slots)
      in
      Json.Obj
        [
          ("role", Json.Str "supervisor");
          ("restarts", Json.Num (float_of_int t.restarts));
          ("slots", Json.Arr per_slot);
        ])
