(** Process supervisor for a worker fleet ([symref fleet]'s back half).

    One {e slot} per worker.  The supervisor spawns each slot through a
    caller callback (it never knows what a worker is), reaps exits with
    non-blocking [waitpid], and restarts crashed slots after a capped
    exponential backoff stretched by the same deterministic jitter as
    {!Router.probe_jitter} — a replayed supervision schedule is
    identical.  Crashes inside a sliding window count against a per-slot
    budget; a slot that exhausts it is {e given up} (counted in
    [fleet.giveups]) so a worker that can never start does not burn CPU
    forever, while the rest of the fleet keeps serving.  Restarts count
    in [fleet.restarts].

    Shutdown escalates politely: a caller-supplied notify (typically the
    protocol Shutdown request) first, SIGTERM for whoever ignored it,
    SIGKILL for whoever ignored that, each rung separated by the grace
    period — and every child is reaped before {!stop} returns. *)

type config = {
  restart_delay_ms : float;
      (** Backoff base: the delay after the first crash in the window. *)
  max_restart_delay_ms : float;
      (** Cap on the doubled backoff. *)
  crash_budget : int;
      (** Crashes tolerated inside [crash_window_s] before giving up. *)
  crash_window_s : float;
      (** Sliding window over which crashes are counted. *)
}

val default_config : config
(** [{restart_delay_ms = 100.; max_restart_delay_ms = 5000.;
      crash_budget = 5; crash_window_s = 30.}] *)

type slot_state =
  | Running of int  (** The child's pid. *)
  | Backing_off of { until : float }
      (** Crashed; restarts at [until] (unix time). *)
  | Given_up  (** Crash budget exhausted, or never started / stopped. *)

type t

val create : ?config:config -> slots:int -> spawn:(slot:int -> int) -> unit -> t
(** [create ~slots ~spawn ()] prepares [slots] worker slots; [spawn
    ~slot] must fork+exec slot [slot]'s worker and return its pid (called
    once per (re)start, from the supervising thread).  Nothing runs until
    {!start} or {!run}.  @raise Invalid_argument when [slots < 1] or
    [crash_budget < 1]. *)

val start : t -> unit
(** Spawn every slot that is not already running. *)

val step : ?now:float -> t -> unit
(** One supervision beat: reap exited children (their slots go on the
    backoff schedule, or give up past the budget) and spawn slots whose
    backoff has passed.  Never blocks.  [now] (unix time) is injectable
    so tests can replay a schedule. *)

val run : ?poll_interval_ms:int -> t -> Thread.t
(** {!start}, then loop {!step} every [poll_interval_ms] (default 50) on
    a fresh thread until {!stop}; returns that thread (join it after
    [stop] for a clean wind-down). *)

val slots : t -> int

val slot_state : t -> int -> slot_state

val restarts : t -> int
(** Restarts performed since {!create} (not counting first spawns). *)

val stopping : t -> bool

val stop : ?grace_s:float -> ?notify:(slot:int -> pid:int -> unit) -> t -> unit
(** Wind the fleet down.  [notify] (when given) is the polite first rung
    — typically a protocol Shutdown to the slot's address; exceptions it
    raises are swallowed.  Children still alive [grace_s] (default 2.0)
    after the notify get SIGTERM; still alive after another grace,
    SIGKILL.  Every child is reaped before this returns, and every slot
    ends [Given_up]. *)

val stats_json : t -> Symref_obs.Json.t
(** [{role; restarts; slots: [{slot; state; pid; spawns;
    recent_crashes}]}]. *)
