(* Transport addressing: one NDJSON protocol over two socket families. *)

type address = Unix_sock of string | Tcp of { host : string; port : int }

let parse spec =
  (* [host:port] when the suffix after the last ':' is a valid port and the
     spec cannot be a filesystem path (no '/'); everything else is a Unix
     socket path.  This keeps every pre-existing socket-path spelling
     working while letting the same flag accept TCP endpoints. *)
  match String.rindex_opt spec ':' with
  | Some i when not (String.contains spec '/') -> (
      let host = String.sub spec 0 i in
      let port_s = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port_s with
      | Some port when port >= 0 && port < 65536 ->
          Tcp { host = (if host = "" then "127.0.0.1" else host); port }
      | _ -> Unix_sock spec)
  | _ -> Unix_sock spec

let to_string = function
  | Unix_sock path -> path
  | Tcp { host; port } -> Printf.sprintf "%s:%d" host port

let sockaddr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp { host; port } ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match (Unix.gethostbyname host).Unix.h_addr_list with
          | [||] -> failwith (host ^ ": no address")
          | addrs -> addrs.(0))
      in
      Unix.ADDR_INET (inet, port)

let socket_domain = function Unix_sock _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET

let connect addr =
  let fd = Unix.socket (socket_domain addr) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (sockaddr addr)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let listen ?(backlog = 16) ?socket_mode addr =
  match addr with
  | Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (* Starting a daemon on a live daemon's socket replaces it. *)
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      (try
         Unix.bind fd (Unix.ADDR_UNIX path);
         (match socket_mode with
         | Some mode -> Unix.chmod path mode
         | None -> ());
         Unix.listen fd backlog
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd
  | Tcp _ ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         (* Restarted daemons must rebind without waiting out TIME_WAIT. *)
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (sockaddr addr);
         Unix.listen fd backlog
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd

let bound_address addr fd =
  match addr with
  | Unix_sock _ -> addr
  | Tcp { host; _ } -> (
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, port) -> Tcp { host; port }
      | Unix.ADDR_UNIX path -> Unix_sock path)

let close_listener addr fd =
  (try Unix.close fd with Unix.Unix_error _ -> ());
  match addr with
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()
