(** Transport addressing for the serve protocol: the NDJSON exchange is
    byte-identical over a Unix-domain socket and a TCP connection; only the
    endpoint differs.  Every CLI flag and config entry that names an
    endpoint goes through {!parse}, so [/run/symref.sock] and
    [127.0.0.1:7070] are interchangeable everywhere. *)

type address =
  | Unix_sock of string  (** filesystem path of a Unix-domain socket *)
  | Tcp of { host : string; port : int }

val parse : string -> address
(** [parse spec] reads [host:port] (numeric port; empty host means
    [127.0.0.1]) as {!Tcp} and anything else — in particular anything
    containing a [/] — as a {!Unix_sock} path.  Total: never raises. *)

val to_string : address -> string
(** Inverse of {!parse} on its own output. *)

val sockaddr : address -> Unix.sockaddr
(** Resolve to a [Unix.sockaddr]; TCP hostnames go through
    [Unix.gethostbyname] when not already numeric.
    @raise Failure when the hostname does not resolve. *)

val connect : address -> Unix.file_descr
(** Open a stream connection; the descriptor is closed again if the
    connect itself fails.  @raise Unix.Unix_error on failure. *)

val listen : ?backlog:int -> ?socket_mode:int -> address -> Unix.file_descr
(** Bind and listen.  [backlog] defaults to 16.  A Unix socket first
    unlinks any stale file at the path and applies [socket_mode] (a chmod
    mask, e.g. [0o600]) between bind and listen; a TCP listener sets
    [SO_REUSEADDR] so restarts do not wait out [TIME_WAIT] and ignores
    [socket_mode].  @raise Unix.Unix_error when binding fails. *)

val bound_address : address -> Unix.file_descr -> address
(** The address actually bound: resolves TCP port [0] (ephemeral, used by
    tests and the load bench) to the kernel-assigned port. *)

val close_listener : address -> Unix.file_descr -> unit
(** Close the descriptor and, for a Unix socket, unlink the path.  Never
    raises. *)
