(* Error budgets for the three-stage simplification pipeline.

   The user states one magnitude/phase tolerance for the whole run; the
   pipeline spends it in three instalments — SBG prunes the circuit, SDG
   truncates coefficients, SAG drops function-level terms — so the stage
   shares must sum to at most one or the certificate could never close. *)

type split = { sbg : float; sdg : float; sag : float }

let default_split = { sbg = 0.4; sdg = 0.35; sag = 0.25 }

type t = { total_db : float; total_deg : float; split : split }

let check_share what s =
  if not (Float.is_finite s) || s < 0. then
    invalid_arg (Printf.sprintf "Budget: %s share must be finite and >= 0" what)

let v ?(split = default_split) ~db ~deg () =
  if not (Float.is_finite db && db > 0.) then
    invalid_arg "Budget: the dB budget must be finite and > 0";
  if not (Float.is_finite deg && deg > 0.) then
    invalid_arg "Budget: the degree budget must be finite and > 0";
  check_share "sbg" split.sbg;
  check_share "sdg" split.sdg;
  check_share "sag" split.sag;
  if split.sbg +. split.sdg +. split.sag > 1. +. 1e-9 then
    invalid_arg "Budget: stage shares must sum to at most 1";
  { total_db = db; total_deg = deg; split }

let sbg_db t = t.total_db *. t.split.sbg
let sbg_deg t = t.total_deg *. t.split.sbg
let sdg_db t = t.total_db *. t.split.sdg
let sdg_deg t = t.total_deg *. t.split.sdg
let sag_db t = t.total_db *. t.split.sag
let sag_deg t = t.total_deg *. t.split.sag

(* A (dB, degree) allowance translated to the relative-magnitude epsilon the
   term-dropping stages consume: a relative perturbation of eps moves the
   magnitude by at most 20 log10(1 + eps) dB and the phase by at most
   arcsin(eps) — use the tighter of the two bounds, linearised on the safe
   side for the phase (sin x <= x). *)
let epsilon ~db ~deg =
  let from_db = Float.pow 10. (db /. 20.) -. 1. in
  let from_deg = Float.sin (deg *. Float.pi /. 180.) in
  Float.max 0. (Float.min from_db from_deg)

let sdg_epsilon t = epsilon ~db:(sdg_db t) ~deg:(sdg_deg t)
let sag_epsilon t = epsilon ~db:(sag_db t) ~deg:(sag_deg t)
