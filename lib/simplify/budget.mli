(** Error budgets for the simplification pipeline.

    One user-level magnitude/phase tolerance, split across the three stages
    (SBG circuit pruning, SDG coefficient truncation, SAG function-level
    term dropping) so the end-to-end certificate can close against the full
    budget. *)

type split = {
  sbg : float;  (** share of the budget spent pruning the circuit *)
  sdg : float;  (** share spent truncating coefficients *)
  sag : float;  (** share spent dropping function-level terms *)
}

val default_split : split
(** [0.40 / 0.35 / 0.25] — pruning buys the most compression per dB, so it
    gets the largest share. *)

type t = {
  total_db : float;   (** end-to-end worst-case magnitude budget, dB *)
  total_deg : float;  (** end-to-end worst-case phase budget, degrees *)
  split : split;
}

val v : ?split:split -> db:float -> deg:float -> unit -> t
(** @raise Invalid_argument when a budget is not finite and positive, a
    share is negative, or the shares sum to more than one. *)

(** Per-stage allowances, [total * share]: *)

val sbg_db : t -> float
val sbg_deg : t -> float
val sdg_db : t -> float
val sdg_deg : t -> float
val sag_db : t -> float
val sag_deg : t -> float

val epsilon : db:float -> deg:float -> float
(** The relative-magnitude epsilon equivalent to a (dB, degree) allowance:
    [min(10^(db/20) - 1, sin(deg * pi/180))] — a relative perturbation of
    [eps] moves the magnitude by at most [20 log10(1+eps)] dB and the phase
    by at most [arcsin eps >= eps] radians, so either bound alone keeps the
    stage inside its share. *)

val sdg_epsilon : t -> float
val sag_epsilon : t -> float
