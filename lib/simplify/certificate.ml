(* The machine-checkable half of a simplification result: what was asked,
   what was measured, and where the budget went.  The verification sweep is
   re-run against the numerical reference after all three stages, so the
   certificate reports measured deviation, not a sum of stage estimates. *)

module Deviation = Symref_core.Deviation
module Json = Symref_obs.Json

type stage = {
  stage : string;
  budget_db : float;
  budget_deg : float;
  used_db : float;
  used_deg : float;
  removed : int;
}

type t = {
  budget_db : float;
  budget_deg : float;
  max_db : float;
  max_deg : float;
  rms_db : float;
  rms_deg : float;
  bands : Deviation.band list;
  grid_points : int;
  from_hz : float;
  to_hz : float;
  attempts : int;
  within_budget : bool;
  stages : stage list;
}

let of_deviation ~budget_db ~budget_deg ~attempts ~stages (d : Deviation.t) =
  let n = Array.length d.Deviation.points in
  {
    budget_db;
    budget_deg;
    max_db = d.Deviation.max_db;
    max_deg = d.Deviation.max_deg;
    rms_db = d.Deviation.rms_db;
    rms_deg = d.Deviation.rms_deg;
    bands = d.Deviation.bands;
    grid_points = n;
    from_hz = d.Deviation.points.(0).Deviation.freq_hz;
    to_hz = d.Deviation.points.(n - 1).Deviation.freq_hz;
    attempts;
    within_budget =
      d.Deviation.max_db <= budget_db && d.Deviation.max_deg <= budget_deg;
    stages;
  }

(* The machine check: the verdict must follow from the recorded numbers. *)
let check t =
  t.within_budget = (t.max_db <= t.budget_db && t.max_deg <= t.budget_deg)
  && List.for_all
       (fun (b : Deviation.band) ->
         b.Deviation.max_db <= t.max_db && b.Deviation.max_deg <= t.max_deg)
       t.bands

let num x = Json.Num x
let inum i = Json.Num (float_of_int i)

let stage_json s =
  Json.Obj
    [
      ("stage", Json.Str s.stage);
      ("budget_db", num s.budget_db);
      ("budget_deg", num s.budget_deg);
      ("used_db", num s.used_db);
      ("used_deg", num s.used_deg);
      ("removed", inum s.removed);
    ]

let band_json (b : Deviation.band) =
  Json.Obj
    [
      ("from_hz", num b.Deviation.lo_hz);
      ("to_hz", num b.Deviation.hi_hz);
      ("points", inum b.Deviation.points);
      ("max_db", num b.Deviation.max_db);
      ("max_deg", num b.Deviation.max_deg);
    ]

let to_json t =
  Json.Obj
    [
      ("budget_db", num t.budget_db);
      ("budget_deg", num t.budget_deg);
      ("max_db", num t.max_db);
      ("max_deg", num t.max_deg);
      ("rms_db", num t.rms_db);
      ("rms_deg", num t.rms_deg);
      ("grid_points", inum t.grid_points);
      ("from_hz", num t.from_hz);
      ("to_hz", num t.to_hz);
      ("attempts", inum t.attempts);
      ("within_budget", Json.Bool t.within_budget);
      ("stages", Json.Arr (List.map stage_json t.stages));
      ("bands", Json.Arr (List.map band_json t.bands));
    ]

let to_strings t =
  [
    ("budget", Printf.sprintf "%g dB / %g deg" t.budget_db t.budget_deg);
    ("worst error", Printf.sprintf "%.6f dB / %.6f deg" t.max_db t.max_deg);
    ("rms error", Printf.sprintf "%.6f dB / %.6f deg" t.rms_db t.rms_deg);
    ( "grid",
      Printf.sprintf "%d points, %g..%g Hz" t.grid_points t.from_hz t.to_hz );
    ("attempts", string_of_int t.attempts);
    ("within budget", string_of_bool t.within_budget);
  ]
