(** Error certificates for simplified network functions.

    A certificate records the requested budget, the {e measured} worst-case
    and RMS deviation of the simplified [H(s)] from the numerical reference
    over the verification grid, a per-decade breakdown
    ({!Symref_core.Deviation}), and a per-stage attribution of the budget.
    It is machine-checkable: {!check} re-derives the verdict from the
    recorded numbers. *)

type stage = {
  stage : string;      (** ["sbg"], ["sdg"] or ["sag"] *)
  budget_db : float;   (** allowance the stage was given *)
  budget_deg : float;
  used_db : float;     (** measured deviation increase the stage caused *)
  used_deg : float;
  removed : int;       (** elements (SBG) or terms (SDG/SAG) removed *)
}

type t = {
  budget_db : float;          (** requested end-to-end budget *)
  budget_deg : float;
  max_db : float;             (** measured worst-case magnitude deviation *)
  max_deg : float;
  rms_db : float;
  rms_deg : float;
  bands : Symref_core.Deviation.band list;  (** per-decade breakdown *)
  grid_points : int;
  from_hz : float;
  to_hz : float;
  attempts : int;             (** pipeline attempts before this result *)
  within_budget : bool;       (** [max_db <= budget_db && max_deg <= budget_deg] *)
  stages : stage list;        (** in pipeline order *)
}

val of_deviation :
  budget_db:float ->
  budget_deg:float ->
  attempts:int ->
  stages:stage list ->
  Symref_core.Deviation.t ->
  t

val check : t -> bool
(** Re-derive the verdict: [within_budget] must match the recorded errors
    and no band may exceed the recorded overall maxima. *)

val to_json : t -> Symref_obs.Json.t
val to_strings : t -> (string * string) list
(** Rendered key/value rows in display order (CLI text output). *)
