(* The end-to-end workload the paper's references exist for: generate a
   numerical reference, drive the three simplification stages under an error
   budget, and re-verify the simplified H(s) against the reference.

   Stage order and budget flow:

     reference (full circuit)
        |
     SBG  - prune/short circuit elements under the SBG budget share
        |
     dimension check - the pruned circuit must fit Sdet.max_dimension
        |
     Sdet - exact symbolic network function of the pruned circuit
        |
     reference (pruned circuit) - eq. 3 references for SDG
        |
     SDG  - per-coefficient term truncation under the SDG share
        |
     SAG  - function-level term dropping under the SAG share
        |
     verify - measured deviation of the result vs the original reference

   When the verification sweep lands outside the total budget the SDG/SAG
   epsilons are halved and those two stages re-run (the SBG prune and the
   exact expression are kept).  After [max_attempts] the pipeline falls back
   to the exact pruned expression, whose deviation is the measured SBG
   residual — inside the SBG share by construction — so a finite budget is
   always certifiable unless the circuit itself is out of reach. *)

module Netlist = Symref_circuit.Netlist
module Nodal = Symref_mna.Nodal
module Reference = Symref_core.Reference
module Adaptive = Symref_core.Adaptive
module Deviation = Symref_core.Deviation
module Sbg = Symref_symbolic.Sbg
module Sdet = Symref_symbolic.Sdet
module Sdg = Symref_symbolic.Sdg
module Sag = Symref_symbolic.Sag
module Sym = Symref_symbolic.Sym
module Ef = Symref_numeric.Extfloat
module Metrics = Symref_obs.Metrics
module Trace = Symref_obs.Trace

exception Symbolic_limit of { dim : int; limit : int }

type config = {
  sigma : int;
  r : float;
  max_attempts : int;
  shorts : bool;
}

let default_config = { sigma = 6; r = 1.; max_attempts = 3; shorts = true }

type result = {
  exact_num_terms : int;
  exact_den_terms : int;
  num : Sym.expr;
  den : Sym.expr;
  num_terms : int;
  den_terms : int;
  elements_before : int;
  elements_after : int;
  dim : int;
  pruned : Netlist.t;
  sbg : Sbg.outcome;
  sdg_num : Sdg.report;
  sdg_den : Sdg.report;
  sag : Sag.report;
  attempts : int;
  fallback : bool;
  certificate : Certificate.t;
  reference : Reference.t;
}

let h_of num den s = Complex.div (Sym.eval num s) (Sym.eval den s)

(* A "kept everything" report for the fallback path: the eq. 3 test against
   a numerical reference can never certify epsilon = 0 (the reference itself
   carries interpolation error), so the fallback skips the stage instead of
   running it with an impossible tolerance. *)
let full_sdg_report e =
  let n = Sym.term_count e in
  { Sdg.coefficients = []; total_terms = n; kept_terms = n }

let run ?(config = default_config) ?check circuit ~input ~output
    ~(budget : Budget.t) ~freqs =
  if Array.length freqs = 0 then invalid_arg "Pipeline.run: empty frequency grid";
  Metrics.incr Metrics.simplify_requests;
  let chk () = match check with Some f -> f () | None -> () in
  let acfg =
    { Adaptive.default_config with Adaptive.sigma = config.sigma; r = config.r }
  in
  let reference =
    Trace.span ~cat:"simplify" "simplify.reference" (fun () ->
        Reference.generate ~config:acfg ?check circuit ~input ~output)
  in
  let verify num den =
    Trace.span ~cat:"simplify" "simplify.verify" (fun () ->
        Deviation.measure ~reference:(Reference.eval reference) (h_of num den) freqs)
  in
  (* --- SBG: prune the circuit under its budget share --- *)
  chk ();
  let sbg_cfg =
    {
      Sbg.default_config with
      Sbg.tolerance_db = Budget.sbg_db budget;
      tolerance_deg = Budget.sbg_deg budget;
      shortable = (if config.shorts then Sbg.default_shortable else fun _ -> false);
    }
  in
  let sbg =
    Trace.span ~cat:"simplify" "simplify.sbg" (fun () ->
        Sbg.prune ~config:sbg_cfg circuit ~input ~output ~freqs)
  in
  (* A prune that takes the last capacitor leaves no frequency scale for
     the eq. 3 references of the SDG stage.  Keep the unpruned circuit
     instead: the conservative outcome, with zero SBG error by
     construction. *)
  let sbg =
    if
      Netlist.capacitor_count sbg.Sbg.pruned = 0
      && Netlist.capacitor_count circuit > 0
    then
      {
        sbg with
        Sbg.pruned = circuit;
        removed = [];
        removals = [];
        error_db = 0.;
        error_deg = 0.;
      }
    else sbg
  in
  Metrics.add Metrics.simplify_removed_elements (List.length sbg.Sbg.removals);
  let pruned = sbg.Sbg.pruned in
  let dim = Nodal.dimension (Nodal.make pruned ~input ~output) in
  if dim > Sdet.max_dimension then begin
    Metrics.incr Metrics.simplify_unsupported;
    raise (Symbolic_limit { dim; limit = Sdet.max_dimension })
  end;
  (* --- exact symbolic expression of the pruned circuit --- *)
  chk ();
  let nf =
    Trace.span ~cat:"simplify" "simplify.sdet" (fun () ->
        Sdet.network_function pruned ~input ~output)
  in
  let exact_num_terms = Sym.term_count nf.Sdet.num in
  let exact_den_terms = Sym.term_count nf.Sdet.den in
  (* --- eq. 3 references for SDG: coefficients of the pruned circuit --- *)
  let pruned_ref =
    Trace.span ~cat:"simplify" "simplify.reference_pruned" (fun () ->
        Reference.generate ~config:acfg ?check pruned ~input ~output)
  in
  let refs (side : Adaptive.result) = Array.map Ef.to_float side.Adaptive.coeffs in
  let num_refs = refs pruned_ref.Reference.num in
  let den_refs = refs pruned_ref.Reference.den in
  let sbg_stage =
    {
      Certificate.stage = "sbg";
      budget_db = Budget.sbg_db budget;
      budget_deg = Budget.sbg_deg budget;
      used_db = sbg.Sbg.error_db;
      used_deg = sbg.Sbg.error_deg;
      removed = List.length sbg.Sbg.removals;
    }
  in
  let finish ~num ~den ~sdg_num ~sdg_den ~sag ~attempts ~fallback ~stages dev =
    let removed_terms =
      exact_num_terms + exact_den_terms - Sym.term_count num - Sym.term_count den
    in
    Metrics.add Metrics.simplify_removed_terms removed_terms;
    {
      exact_num_terms;
      exact_den_terms;
      num;
      den;
      num_terms = Sym.term_count num;
      den_terms = Sym.term_count den;
      elements_before = Netlist.element_count circuit;
      elements_after = Netlist.element_count pruned;
      dim;
      pruned;
      sbg;
      sdg_num;
      sdg_den;
      sag;
      attempts;
      fallback;
      certificate =
        Certificate.of_deviation ~budget_db:budget.Budget.total_db
          ~budget_deg:budget.Budget.total_deg ~attempts ~stages dev;
      reference;
    }
  in
  (* --- SDG + SAG under tighten-and-retry --- *)
  let rec attempt k =
    if k >= config.max_attempts then None
    else begin
      chk ();
      if k > 0 then Metrics.incr Metrics.simplify_retries;
      let scale = Float.pow 0.5 (float_of_int k) in
      let sdg_db = Budget.sdg_db budget *. scale
      and sdg_deg = Budget.sdg_deg budget *. scale
      and sag_db = Budget.sag_db budget *. scale
      and sag_deg = Budget.sag_deg budget *. scale in
      let eps_sdg = Budget.epsilon ~db:sdg_db ~deg:sdg_deg in
      let eps_sag = Budget.epsilon ~db:sag_db ~deg:sag_deg in
      let num', sdg_num =
        Trace.span ~cat:"simplify" "simplify.sdg" (fun () ->
            Sdg.simplify ~epsilon:eps_sdg ~references:num_refs nf.Sdet.num)
      in
      let den', sdg_den =
        Trace.span ~cat:"simplify" "simplify.sdg" (fun () ->
            Sdg.simplify ~epsilon:eps_sdg ~references:den_refs nf.Sdet.den)
      in
      match
        Trace.span ~cat:"simplify" "simplify.sag" (fun () ->
            Sag.simplify ~epsilon:eps_sag ~freqs { Sdet.num = num'; den = den' })
      with
      (* An over-eager truncation can zero the denominator on the grid;
         tighten and retry. *)
      | exception Invalid_argument _ -> attempt (k + 1)
      | nf', sag ->
          let dev = verify nf'.Sdet.num nf'.Sdet.den in
          if
            Deviation.within dev ~db:budget.Budget.total_db
              ~deg:budget.Budget.total_deg
          then begin
            (* Attribute the budget: measure the deviation after SDG alone,
               so the certificate splits the measured error between the two
               term-dropping stages. *)
            let dev_sdg = verify num' den' in
            let stages =
              [
                sbg_stage;
                {
                  Certificate.stage = "sdg";
                  budget_db = sdg_db;
                  budget_deg = sdg_deg;
                  used_db =
                    Float.max 0. (dev_sdg.Deviation.max_db -. sbg.Sbg.error_db);
                  used_deg =
                    Float.max 0. (dev_sdg.Deviation.max_deg -. sbg.Sbg.error_deg);
                  removed =
                    sdg_num.Sdg.total_terms - sdg_num.Sdg.kept_terms
                    + sdg_den.Sdg.total_terms - sdg_den.Sdg.kept_terms;
                };
                {
                  Certificate.stage = "sag";
                  budget_db = sag_db;
                  budget_deg = sag_deg;
                  used_db =
                    Float.max 0.
                      (dev.Deviation.max_db -. dev_sdg.Deviation.max_db);
                  used_deg =
                    Float.max 0.
                      (dev.Deviation.max_deg -. dev_sdg.Deviation.max_deg);
                  removed = sag.Sag.dropped;
                };
              ]
            in
            Some
              (finish ~num:nf'.Sdet.num ~den:nf'.Sdet.den ~sdg_num ~sdg_den ~sag
                 ~attempts:(k + 1) ~fallback:false ~stages dev)
          end
          else attempt (k + 1)
    end
  in
  match attempt 0 with
  | Some result -> result
  | None ->
      (* Fallback: the exact pruned expression.  Its deviation from the
         reference is the SBG residual plus interpolation noise. *)
      Metrics.incr Metrics.simplify_fallbacks;
      chk ();
      let dev = verify nf.Sdet.num nf.Sdet.den in
      let zero_stage name =
        {
          Certificate.stage = name;
          budget_db = 0.;
          budget_deg = 0.;
          used_db = 0.;
          used_deg = 0.;
          removed = 0;
        }
      in
      let sag =
        {
          Sag.total_terms = exact_num_terms + exact_den_terms;
          kept_terms = exact_num_terms + exact_den_terms;
          dropped = 0;
          max_error = 0.;
        }
      in
      finish ~num:nf.Sdet.num ~den:nf.Sdet.den
        ~sdg_num:(full_sdg_report nf.Sdet.num)
        ~sdg_den:(full_sdg_report nf.Sdet.den) ~sag
        ~attempts:(config.max_attempts + 1) ~fallback:true
        ~stages:[ sbg_stage; zero_stage "sdg"; zero_stage "sag" ]
        dev
