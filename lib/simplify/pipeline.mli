(** Reference-driven symbolic simplification, end to end.

    The orchestration layer over the paper's machinery: generate a numerical
    reference ({!Symref_core.Reference}), prune the circuit (SBG), build the
    exact symbolic network function ({!Symref_symbolic.Sdet}), truncate
    coefficients against fresh references (SDG), drop function-level terms
    (SAG), and re-verify the simplified [H(s)] against the original
    reference over the full grid, producing a {!Certificate}.

    When verification fails the SDG/SAG tolerances are halved and re-run up
    to [max_attempts] times; the final fallback is the exact expression of
    the pruned circuit, whose deviation is the SBG residual — inside budget
    by construction. *)

exception Symbolic_limit of { dim : int; limit : int }
(** The pruned circuit's nodal dimension still exceeds
    {!Symref_symbolic.Sdet.max_dimension}: exact symbolic generation is out
    of reach, so simplification is a typed unsupported error, never an
    assertion failure. *)

type config = {
  sigma : int;        (** reference significant digits (default 6) *)
  r : float;          (** interpolation radius factor (default 1) *)
  max_attempts : int; (** SDG/SAG tighten-and-retry rounds (default 3) *)
  shorts : bool;      (** let SBG short series elements (default true) *)
}

val default_config : config

type result = {
  exact_num_terms : int;   (** numerator terms of the exact pruned H(s) *)
  exact_den_terms : int;
  num : Symref_symbolic.Sym.expr;  (** simplified numerator *)
  den : Symref_symbolic.Sym.expr;  (** simplified denominator *)
  num_terms : int;
  den_terms : int;
  elements_before : int;   (** circuit elements before SBG *)
  elements_after : int;    (** circuit elements after SBG *)
  dim : int;               (** nodal dimension of the pruned circuit *)
  pruned : Symref_circuit.Netlist.t;
  sbg : Symref_symbolic.Sbg.outcome;
  sdg_num : Symref_symbolic.Sdg.report;
  sdg_den : Symref_symbolic.Sdg.report;
  sag : Symref_symbolic.Sag.report;
  attempts : int;          (** SDG/SAG rounds run (max_attempts + 1 = fallback) *)
  fallback : bool;         (** result is the exact pruned expression *)
  certificate : Certificate.t;
  reference : Symref_core.Reference.t;  (** the verification reference *)
}

val run :
  ?config:config ->
  ?check:(unit -> unit) ->
  Symref_circuit.Netlist.t ->
  input:Symref_mna.Nodal.input ->
  output:Symref_mna.Nodal.output ->
  budget:Budget.t ->
  freqs:float array ->
  result
(** [check] is a cooperative-cancellation hook, called between stages and
    threaded into both reference generations (the serve layer uses it for
    wall-clock deadlines).
    @raise Symbolic_limit when the pruned circuit exceeds the symbolic
    dimension limit.
    @raise Invalid_argument on an empty frequency grid.
    @raise Symref_mna.Nodal.Unsupported outside the nodal class. *)
