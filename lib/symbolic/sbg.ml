module Element = Symref_circuit.Element
module Netlist = Symref_circuit.Netlist
module Nodal = Symref_mna.Nodal
module Deviation = Symref_core.Deviation

type action = Opened | Shorted

type removal = {
  element : string;
  action : action;
  delta_db : float;
  delta_deg : float;
  error_db : float;
  error_deg : float;
}

type config = {
  tolerance_db : float;
  tolerance_deg : float;
  removable : Element.t -> bool;
  shortable : Element.t -> bool;
}

let default_removable (e : Element.t) =
  match e.Element.kind with
  | Element.Conductance _ | Element.Resistor _ | Element.Capacitor _ -> true
  | Element.Vccs _ | Element.Isrc _ | Element.Inductor _ | Element.Vcvs _
  | Element.Cccs _ | Element.Ccvs _ | Element.Vsrc _ ->
      false

let default_shortable (e : Element.t) =
  match e.Element.kind with
  | Element.Conductance _ | Element.Resistor _ -> true
  | _ -> false

let default_config =
  {
    tolerance_db = 0.5;
    tolerance_deg = 5.;
    removable = default_removable;
    shortable = (fun _ -> false);
  }

type outcome = {
  pruned : Netlist.t;
  removed : string list;
  removals : removal list;
  error_db : float;
  error_deg : float;
  candidates : int;
  trials : int;
}

(* Frequency response through the nodal evaluator; None when the pruned
   network is singular/unsupported at some point. *)
let response circuit ~input ~output freqs =
  match Nodal.make circuit ~input ~output with
  | exception Nodal.Unsupported _ -> None
  | problem ->
      let values =
        Array.map
          (fun f ->
            Nodal.eval problem { Complex.re = 0.; im = 2. *. Float.pi *. f })
          freqs
      in
      if Array.exists (fun v -> v.Nodal.singular) values then None
      else Some (Array.map (fun v -> v.Nodal.h) values)

(* Build the candidate circuit for a move; None when the move is structurally
   impossible (element already gone, a short collapsing a constraint element
   or a controlled source's reference, the compaction dropping the circuit's
   input/output node). *)
let apply circuit (name, act) =
  match
    match act with
    | Opened -> Netlist.compact (Netlist.remove_element circuit name)
    | Shorted -> Netlist.short_element circuit name
  with
  | candidate -> Some candidate
  | exception (Invalid_argument _ | Not_found) -> None

let prune ?(config = default_config) circuit ~input ~output ~freqs =
  let reference =
    match response circuit ~input ~output freqs with
    | Some h -> h
    | None -> invalid_arg "Sbg.prune: the full circuit itself is singular"
  in
  let moves =
    List.concat_map
      (fun (e : Element.t) ->
        (if config.removable e then [ (e.Element.name, Opened) ] else [])
        @ if config.shortable e then [ (e.Element.name, Shorted) ] else [])
      (Netlist.elements circuit)
  in
  let trials = ref 0 in
  (* Cheap impact estimate: deviation when the move is applied alone. *)
  let impact move =
    incr trials;
    match apply circuit move with
    | None -> infinity
    | Some candidate -> (
        match response candidate ~input ~output freqs with
        | None -> infinity
        | Some h ->
            let ddb, ddeg = Deviation.worst ~reference h in
            (ddb /. config.tolerance_db) +. (ddeg /. config.tolerance_deg))
  in
  let ranked =
    List.sort
      (fun (_, a) (_, b) -> Float.compare a b)
      (List.map (fun m -> (m, impact m)) moves)
  in
  let current = ref circuit and removals = ref [] in
  let err_db = ref 0. and err_deg = ref 0. in
  List.iter
    (fun (((name, act) as move), est) ->
      (* An element can be both an open and a short candidate; whichever
         move lands first consumes it. *)
      if Float.is_finite est && Netlist.find_element !current name <> None then begin
        incr trials;
        match apply !current move with
        | None -> ()
        | Some candidate -> (
            match response candidate ~input ~output freqs with
            | None -> ()
            | Some h ->
                let ddb, ddeg = Deviation.worst ~reference h in
                if ddb <= config.tolerance_db && ddeg <= config.tolerance_deg
                then begin
                  removals :=
                    {
                      element = name;
                      action = act;
                      delta_db = Float.max 0. (ddb -. !err_db);
                      delta_deg = Float.max 0. (ddeg -. !err_deg);
                      error_db = ddb;
                      error_deg = ddeg;
                    }
                    :: !removals;
                  current := candidate;
                  err_db := ddb;
                  err_deg := ddeg
                end)
      end)
    ranked;
  let removals = List.rev !removals in
  {
    pruned = !current;
    removed = List.map (fun r -> r.element) removals;
    removals;
    error_db = !err_db;
    error_deg = !err_deg;
    candidates = List.length moves;
    trials = !trials;
  }
