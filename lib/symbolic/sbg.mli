(** Simplification Before Generation: prune circuit elements whose
    contribution to the network function is negligible, so the reduced
    circuit is much easier to analyse symbolically (paper §1).

    Error control compares the frequency response of the pruned circuit
    against the response of the complete circuit — exactly the comparison
    that needs the numerical reference machinery for large circuits.

    Two moves are available per candidate: {e opening} the element (remove
    it, the classic negligible-shunt prune) and {e shorting} it (merge its
    terminal nodes, the negligible-series prune).  Shorts also reduce the
    nodal dimension, which is what makes a circuit reachable for the exact
    symbolic stage ({!Sdet.max_dimension}). *)

type action =
  | Opened   (** element removed; stranded nodes compacted away *)
  | Shorted  (** element removed and its terminal nodes merged *)

type removal = {
  element : string;     (** element name *)
  action : action;
  delta_db : float;     (** error-budget cost of this removal alone *)
  delta_deg : float;
  error_db : float;     (** cumulative deviation after this removal *)
  error_deg : float;
}
(** One accepted removal, in order, with its error attribution: [delta_*] is
    the increase of the cumulative worst-case deviation caused by this
    removal (clamped at zero — a removal can cancel earlier error), and
    [error_*] the running total the accept test checked.  The last entry's
    [error_*] equals the outcome's [error_*]. *)

type config = {
  tolerance_db : float;     (** maximum magnitude deviation (default 0.5 dB) *)
  tolerance_deg : float;    (** maximum phase deviation (default 5 degrees) *)
  removable : Symref_circuit.Element.t -> bool;
      (** open-move candidate filter (default: conductances, resistors,
          capacitors) *)
  shortable : Symref_circuit.Element.t -> bool;
      (** short-move candidate filter (default: nothing — shorts are opt-in;
          {!default_shortable} accepts conductances and resistors) *)
}

val default_config : config

val default_shortable : Symref_circuit.Element.t -> bool
(** Conductances and resistors — the series-parasitic candidates. *)

type outcome = {
  pruned : Symref_circuit.Netlist.t;
  removed : string list;       (** element names, in removal order *)
  removals : removal list;     (** the same removals with error attribution *)
  error_db : float;            (** final worst-case magnitude deviation *)
  error_deg : float;
  candidates : int;            (** candidate moves considered *)
  trials : int;                (** pruning attempts performed *)
}

val prune :
  ?config:config ->
  Symref_circuit.Netlist.t ->
  input:Symref_mna.Nodal.input ->
  output:Symref_mna.Nodal.output ->
  freqs:float array ->
  outcome
(** Greedy pruning: candidate moves are tried in increasing order of a cheap
    impact estimate (response change when the move is applied alone) and
    applied while the cumulative deviation from the {e original} response
    stays inside tolerance.  Moves that make the network singular,
    unsolvable, or that collapse the input/output nodes are kept.
    @raise Invalid_argument when the full circuit itself is singular. *)
