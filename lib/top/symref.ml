(** Umbrella namespace: one [open Symref] (or qualified [Symref.X]) reaches
    every module of the library with its natural name.

    {2 Numerics}
    {!Extfloat}, {!Extcomplex} — extended-range arithmetic;
    {!Cx}, {!Stats}, {!Grid} — helpers.

    {2 Polynomials and transforms}
    {!Poly}, {!Epoly}, {!Roots}; {!Unit_circle}, {!Dft}, {!Fft}.

    {2 Linear algebra}
    {!Dense}, {!Sparse} — complex LU with extended-range determinants.

    {2 Circuits}
    {!Element}, {!Netlist}, {!Devices}, {!Transform};
    workloads {!Rc_ladder}, {!Ota}, {!Ua741}, {!Gm_c}, {!Biquad},
    {!Lc_ladder}, {!Two_stage_miller}, {!Random_net}; filter synthesis
    {!Filter_design}; SPICE {!Units}, {!Parser}, {!Writer}.

    {2 Analyses}
    {!Nodal}, {!Ac}, {!Sensitivity}, {!Noise}, {!Monte_carlo}, {!Twoport},
    {!Transient}.

    {2 The paper's algorithms}
    {!Evaluator}, {!Interp}, {!Band}, {!Scaling}, {!Naive}, {!Fixed_scale},
    {!Adaptive}, {!Reference}, {!Poles}, {!Margins}, {!Rational}, {!Locus},
    {!Fit}, {!Verify}, {!Report}, {!Ascii_plot}.

    {2 Symbolic analysis}
    {!Sym}, {!Sdet}, {!Sdg}, {!Sbg}, {!Sag}, {!Tree_terms}, {!Nested}.

    {2 Simplification}
    {!Simplify_budget}, {!Simplify_certificate}, {!Simplify_pipeline} — the
    reference-driven simplification service of {!page-simplify}: SBG → SDG
    → SAG under a split error budget, re-verified against the numerical
    reference into a machine-checkable certificate ({!Deviation} holds the
    grid-deviation statistics).

    {2 Observability}
    {!Metrics}, {!Trace}, {!Snapshot}, {!Json}; the worker pool behind
    [Interp.run ~domains] is {!Domain_pool}.

    {2 Fault injection}
    {!Inject} — the deterministic chaos registry of {!page-robustness}.

    {2 The serve subsystem}
    {!Serve_protocol}, {!Serve_service}, {!Serve_daemon}, {!Serve_client},
    {!Serve_batch} — the persistent reference-generation service of
    {!page-serve}; {!Serve_transport} names its endpoints (Unix socket or
    TCP), {!Serve_disk_cache} is the persistent result-cache layer,
    {!Serve_router} the consistent-hash fleet front end;
    {!Serve_errors} is its typed failure taxonomy;
    {!Version} is the package version the daemon reports. *)

(* numerics *)
module Extfloat = Symref_numeric.Extfloat
module Extcomplex = Symref_numeric.Extcomplex
module Cx = Symref_numeric.Cx
module Stats = Symref_numeric.Stats
module Grid = Symref_numeric.Grid

(* polynomials and transforms *)
module Poly = Symref_poly.Poly
module Epoly = Symref_poly.Epoly
module Roots = Symref_poly.Roots
module Unit_circle = Symref_dft.Unit_circle
module Dft = Symref_dft.Dft
module Fft = Symref_dft.Fft

(* linear algebra *)
module Dense = Symref_linalg.Dense
module Sparse = Symref_linalg.Sparse

(* circuits *)
module Element = Symref_circuit.Element
module Netlist = Symref_circuit.Netlist
module Devices = Symref_circuit.Devices
module Transform = Symref_circuit.Transform
module Rc_ladder = Symref_circuit.Rc_ladder
module Ota = Symref_circuit.Ota
module Ua741 = Symref_circuit.Ua741
module Gm_c = Symref_circuit.Gm_c
module Biquad = Symref_circuit.Biquad
module Lc_ladder = Symref_circuit.Lc_ladder
module Random_net = Symref_circuit.Random_net
module Two_stage_miller = Symref_circuit.Two_stage_miller
module Filter_design = Symref_circuit.Filter_design

(* SPICE *)
module Units = Symref_spice.Units
module Parser = Symref_spice.Parser
module Writer = Symref_spice.Writer
module Dot = Symref_spice.Dot

(* analyses *)
module Nodal = Symref_mna.Nodal
module Ac = Symref_mna.Ac
module Sensitivity = Symref_mna.Sensitivity
module Noise = Symref_mna.Noise
module Monte_carlo = Symref_mna.Monte_carlo
module Twoport = Symref_mna.Twoport
module Transient = Symref_mna.Transient

(* the paper's algorithms *)
module Evaluator = Symref_core.Evaluator
module Interp = Symref_core.Interp
module Band = Symref_core.Band
module Scaling = Symref_core.Scaling
module Naive = Symref_core.Naive
module Fixed_scale = Symref_core.Fixed_scale
module Adaptive = Symref_core.Adaptive
module Reference = Symref_core.Reference
module Poles = Symref_core.Poles
module Margins = Symref_core.Margins
module Rational = Symref_core.Rational
module Locus = Symref_core.Locus
module Fit = Symref_core.Fit
module Report = Symref_core.Report
module Ascii_plot = Symref_core.Ascii_plot
module Verify = Symref_core.Verify
module Deviation = Symref_core.Deviation
module Domain_pool = Symref_core.Domain_pool

(* symbolic analysis *)
module Sym = Symref_symbolic.Sym
module Sdet = Symref_symbolic.Sdet
module Sdg = Symref_symbolic.Sdg
module Sbg = Symref_symbolic.Sbg
module Sag = Symref_symbolic.Sag
module Tree_terms = Symref_symbolic.Tree_terms
module Nested = Symref_symbolic.Nested

(* simplification *)
module Simplify_budget = Symref_simplify.Budget
module Simplify_certificate = Symref_simplify.Certificate
module Simplify_pipeline = Symref_simplify.Pipeline

(* observability *)
module Metrics = Symref_obs.Metrics
module Trace = Symref_obs.Trace
module Snapshot = Symref_obs.Snapshot
module Json = Symref_obs.Json

(* fault injection *)
module Inject = Symref_fault.Inject

(* the serve subsystem *)
module Serve_protocol = Symref_serve.Protocol
module Serve_service = Symref_serve.Service
module Serve_daemon = Symref_serve.Daemon
module Serve_client = Symref_serve.Client
module Serve_errors = Symref_serve.Errors
module Serve_batch = Symref_serve.Batch
module Serve_transport = Symref_serve.Transport
module Serve_disk_cache = Symref_serve.Disk_cache
module Serve_router = Symref_serve.Router
module Serve_supervisor = Symref_serve.Supervisor
module Version = Symref_serve.Version
