(* The batched structure-of-arrays engine: per-point bit-identity against
   the per-point kernel / boxed chain, eject parity with the threshold
   bailout, allocation-freedom of the steady-state batch, fault-injection
   parity with the hook interleaved mid-batch, and the no-double-count
   accounting of kernel.batch_ejects.

   "Bit-identical" is literal, as in [Test_kernel]: comparisons go through
   [Int64.bits_of_float]. *)

module Sparse = Symref_linalg.Sparse
module Kernel = Symref_linalg.Kernel
module Batch = Symref_linalg.Kernel.Batch
module Ec = Symref_numeric.Extcomplex
module Nodal = Symref_mna.Nodal
module Random_net = Symref_circuit.Random_net
module Uc = Symref_dft.Unit_circle
module Inject = Symref_fault.Inject
module BA1 = Bigarray.Array1

let bits = Int64.bits_of_float

let ec_bits_equal (a : Ec.t) (b : Ec.t) =
  bits a.Ec.c.Complex.re = bits b.Ec.c.Complex.re
  && bits a.Ec.c.Complex.im = bits b.Ec.c.Complex.im
  && a.Ec.e = b.Ec.e

(* --- Sparse-level: batched = boxed refactor+det+solve, per point --------- *)

let lcg = Test_kernel.lcg
let random_system = Test_kernel.random_system

(* Scatter one value assignment into column [q] of the batch planes, and
   the same RHS for every point (value variation is what matters; the RHS
   forward elimination is folded into the same inner loops). *)
let scatter_point b prog q vals (rhs : Complex.t array) =
  let stride = Batch.stride b in
  let wre = Batch.matrix_re b and wim = Batch.matrix_im b in
  let yre = Batch.rhs_re b and yim = Batch.rhs_im b in
  Array.iteri
    (fun e (v : Complex.t) ->
      let sl = prog.Kernel.coo_slot.(e) in
      BA1.set wre ((sl * stride) + q) v.Complex.re;
      BA1.set wim ((sl * stride) + q) v.Complex.im)
    vals;
  Array.iteri
    (fun r (v : Complex.t) ->
      BA1.set yre ((r * stride) + q) v.Complex.re;
      BA1.set yim ((r * stride) + q) v.Complex.im)
    rhs

let prop_sparse_batch_identity =
  QCheck2.Test.make
    ~name:"batched = boxed bitwise on random sparse systems" ~count:30
    QCheck2.Gen.(triple (int_range 1 100_000) (int_range 3 14) (int_range 1 9))
    (fun (seed, n, cnt) ->
      let rand = lcg seed in
      let b, rhs = random_system rand n in
      match Sparse.symbolic b with
      | None -> true
      | Some (pat, _) ->
          let coords = Sparse.pattern_coords pat in
          let dense = Sparse.to_dense b in
          let base = Array.map (fun (i, j) -> dense.(i).(j)) coords in
          let prog = Sparse.pattern_program pat in
          (* Per-point value assignments: the first is the base system, the
             rest perturb it — including a decade-scaled one so some points
             of a batch bail while others don't. *)
          let per_point =
            Array.init cnt (fun q ->
                if q = 0 then base
                else
                  let scale = if q mod 3 = 2 then 1e-7 else 0.5 +. rand () in
                  Array.map
                    (fun (v : Complex.t) ->
                      {
                        Complex.re = v.Complex.re *. scale;
                        im = v.Complex.im *. (scale *. (0.5 +. rand ()));
                      })
                    base)
          in
          let bt = Batch.create prog in
          Batch.begin_batch bt cnt;
          Array.iteri (fun q vals -> scatter_point bt prog q vals rhs) per_point;
          Batch.run bt;
          let stride = Batch.stride bt in
          let xr = Batch.solution_re bt and xi = Batch.solution_im bt in
          Array.for_all Fun.id
            (Array.mapi
               (fun q vals ->
                 match Sparse.refactor pat vals with
                 | None -> Batch.ejected bt q
                 | Some factor ->
                     (not (Batch.ejected bt q))
                     && ec_bits_equal (Sparse.det factor) (Batch.det bt q)
                     && Ec.is_zero (Sparse.det factor) = Batch.det_is_zero bt q
                     && (Batch.det_is_zero bt q
                        ||
                        let x = Sparse.solve factor rhs in
                        Array.for_all Fun.id
                          (Array.mapi
                             (fun j (v : Complex.t) ->
                               bits v.Complex.re
                               = bits (BA1.get xr ((j * stride) + q))
                               && bits v.Complex.im
                                  = bits (BA1.get xi ((j * stride) + q)))
                             x)))
               per_point))

(* --- Nodal-level: eval_batch = per-point eval on random circuits --------- *)

let problem_of = Test_kernel.problem_of
let value_bits_equal = Test_kernel.value_bits_equal

let batch_matches_per_point p ~f ~g points =
  let vb = Nodal.eval_batch ~f ~g p points in
  Array.length vb = Array.length points
  && Array.for_all Fun.id
       (Array.mapi
          (fun i s -> value_bits_equal vb.(i) (Nodal.eval ~f ~g p s))
          points)

let prop_nodal_batch_identity =
  QCheck2.Test.make
    ~name:"eval_batch = eval bitwise on random circuits" ~count:20
    QCheck2.Gen.(pair (int_range 1 10_000) (int_range 3 14))
    (fun (seed, nodes) ->
      let p = problem_of ~kernel:true seed nodes in
      let f = 1. /. Nodal.mean_capacitance p
      and g = 1. /. Nodal.mean_conductance p in
      let k = Int.max 4 (Nodal.order_bound p + 1) in
      let all = Array.init k (fun j -> Uc.point k j) in
      (* Full circle, a single point, and the odd/even conjugate halves a
         conj-symmetric pass would batch. *)
      batch_matches_per_point p ~f ~g all
      && batch_matches_per_point p ~f ~g [| all.(0) |]
      && batch_matches_per_point p ~f ~g
           (Array.init ((k / 2) + 1) (fun j -> all.(j)))
      && batch_matches_per_point p ~f ~g
           (Array.init (k / 2) (fun j -> all.(j)))
      (* A second scale pair exercises pattern relearning + batch reuse. *)
      && batch_matches_per_point p ~f:(2. *. f) ~g all)

(* --- zero allocation per batch ------------------------------------------- *)

let test_zero_alloc_batch () =
  (* Once the planes are grown, a full batch — scatter, one program replay
     over all points, back substitution — allocates zero heap words. *)
  let rand = lcg 99 in
  let b, rhs = random_system rand 16 in
  match Sparse.symbolic b with
  | None -> Alcotest.fail "symbolic factorisation unexpectedly failed"
  | Some (pat, _) ->
      let coords = Sparse.pattern_coords pat in
      let dense = Sparse.to_dense b in
      let m = Array.length coords in
      let prog = Sparse.pattern_program pat in
      let cnt = 32 in
      let slot = prog.Kernel.coo_slot in
      let vre = Array.init m (fun e -> (dense.(fst coords.(e)).(snd coords.(e))).Complex.re)
      and vim = Array.init m (fun e -> (dense.(fst coords.(e)).(snd coords.(e))).Complex.im) in
      let rre = Array.map (fun (v : Complex.t) -> v.Complex.re) rhs
      and rim = Array.map (fun (v : Complex.t) -> v.Complex.im) rhs in
      let bt = Batch.create prog in
      let batch () =
        Batch.begin_batch bt cnt;
        let stride = Batch.stride bt in
        let wre = Batch.matrix_re bt and wim = Batch.matrix_im bt in
        let yre = Batch.rhs_re bt and yim = Batch.rhs_im bt in
        for e = 0 to m - 1 do
          let base = slot.(e) * stride in
          for q = 0 to cnt - 1 do
            BA1.set wre (base + q) (vre.(e) *. (1. +. (0.001 *. float_of_int q)));
            BA1.set wim (base + q) vim.(e)
          done
        done;
        for r = 0 to Array.length rre - 1 do
          let base = r * stride in
          for q = 0 to cnt - 1 do
            BA1.set yre (base + q) rre.(r);
            BA1.set yim (base + q) rim.(r)
          done
        done;
        Batch.run bt
      in
      (* Warm up: grows the planes to [cnt] and sanity-checks the solve. *)
      batch ();
      Alcotest.(check bool) "warm-up batch solves" false (Batch.det_is_zero bt 0);
      Alcotest.(check bool) "warm-up batch ejects nothing" false
        (Batch.ejected bt (cnt - 1));
      let probe iters =
        let before = Gc.minor_words () in
        for _ = 1 to iters do
          batch ()
        done;
        Gc.minor_words () -. before
      in
      Alcotest.(check (float 0.)) "100 batches allocate zero words" 0.
        (probe 100);
      Alcotest.(check (float 0.)) "200 batches allocate zero words" 0.
        (probe 200)

(* --- chaos: sparse.singular armed mid-batch ------------------------------ *)

let with_registry f = Fun.protect ~finally:Inject.disable f

let test_chaos_batch_parity () =
  with_registry (fun () ->
      (* An armed plan whose window opens mid-batch: the batched sweep must
         consume hook hits in point order — ejecting exactly the injected
         points to the boxed path — and reproduce the sequential per-point
         sweep bit for bit, hits and fires included. *)
      let sweep ~how =
        Inject.enable ~seed:7 ();
        Inject.arm Inject.sparse_singular
          (Inject.Times { skip = 3; count = 4 });
        let p = problem_of ~kernel:true 4242 10 in
        let f = 1. /. Nodal.mean_capacitance p
        and g = 1. /. Nodal.mean_conductance p in
        let k = Int.max 4 (Nodal.order_bound p + 1) in
        let points = Array.init k (fun j -> Uc.point k j) in
        let vs =
          match how with
          | `Batch -> Nodal.eval_batch ~f ~g p points
          | `Point -> Array.map (fun s -> Nodal.eval ~f ~g p s) points
        in
        let consumed =
          (Inject.hits Inject.sparse_singular, Inject.fired Inject.sparse_singular)
        in
        (vs, consumed)
      in
      let vb, cb = sweep ~how:`Batch in
      let vp, cp = sweep ~how:`Point in
      Alcotest.(check (pair int int)) "hook consumption identical" cp cb;
      Alcotest.(check bool) "the plan actually fired" true (snd cb > 0);
      Array.iteri
        (fun j a ->
          Alcotest.(check bool)
            (Printf.sprintf "faulted point %d bit-identical" j)
            true
            (value_bits_equal a vp.(j)))
        vb)

(* --- eject accounting ---------------------------------------------------- *)

let test_batch_counters () =
  let module Obs = Symref_obs.Metrics in
  let module Snapshot = Symref_obs.Snapshot in
  let sweep () =
    let p = problem_of ~kernel:true 99 8 in
    let f = 1. /. Nodal.mean_capacitance p
    and g = 1. /. Nodal.mean_conductance p in
    let k = Int.max 4 (Nodal.order_bound p + 1) in
    let points = Array.init k (fun j -> Uc.point k j) in
    ignore (Nodal.eval_batch ~f ~g p points);
    k
  in
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    (fun () ->
      (* Clean sweep: every point batch-served, nothing ejected, nothing
         leaked to the per-point kernel counters. *)
      let k = sweep () in
      let s = Snapshot.capture () in
      Alcotest.(check int) "every point batch-served" k
        s.Snapshot.kernel_batch_points;
      Alcotest.(check int) "batch points count as replays"
        s.Snapshot.lu_refactor s.Snapshot.kernel_batch_points;
      Alcotest.(check int) "no per-point kernel points" 0 s.Snapshot.kernel_points;
      Alcotest.(check int) "no ejects" 0 s.Snapshot.kernel_batch_ejects;
      Alcotest.(check int) "no kernel fallbacks" 0 s.Snapshot.kernel_fallbacks;
      (* Injected sweep: each fired point is ejected and counted exactly
         once under kernel.fallback = kernel.batch_ejects; served + ejected
         still covers every point, so nothing is double-counted. *)
      Obs.reset ();
      with_registry (fun () ->
          Inject.enable ~seed:1 ();
          Inject.arm Inject.sparse_singular (Inject.Times { skip = 1; count = 2 });
          let k = sweep () in
          let fired = Inject.fired Inject.sparse_singular in
          let s = Snapshot.capture () in
          Alcotest.(check bool) "the plan actually fired" true (fired > 0);
          Alcotest.(check int) "ejects = kernel fallbacks"
            s.Snapshot.kernel_fallbacks s.Snapshot.kernel_batch_ejects;
          Alcotest.(check int) "served + ejected = points" k
            (s.Snapshot.kernel_batch_points + s.Snapshot.kernel_batch_ejects);
          Alcotest.(check int) "no per-point kernel points" 0
            s.Snapshot.kernel_points;
          (* Injected ejects are not threshold fallbacks, so lu.refactor
             plus the full-factorisation count must still cover the sweep:
             the fired points went straight to Sparse.factor. *)
          Alcotest.(check bool) "ejected points were factorised from scratch"
            true
            (s.Snapshot.lu_factor >= s.Snapshot.kernel_batch_ejects)))

let suite =
  [
    ( "batch",
      [
        QCheck_alcotest.to_alcotest prop_sparse_batch_identity;
        QCheck_alcotest.to_alcotest prop_nodal_batch_identity;
        Alcotest.test_case "zero allocation per batch" `Quick
          test_zero_alloc_batch;
        Alcotest.test_case "chaos: sparse.singular armed mid-batch" `Quick
          test_chaos_batch_parity;
        Alcotest.test_case "batch counters and eject accounting" `Quick
          test_batch_counters;
      ] );
  ]
