(* Tests for the interpolation engines: band detection, scaling calculus,
   single passes, and the full adaptive algorithm against synthetic
   polynomials and circuit oracles. *)

module Band = Symref_core.Band
module Scaling = Symref_core.Scaling
module Interp = Symref_core.Interp
module Naive = Symref_core.Naive
module Fixed_scale = Symref_core.Fixed_scale
module Adaptive = Symref_core.Adaptive
module Evaluator = Symref_core.Evaluator
module Reference = Symref_core.Reference
module Nodal = Symref_mna.Nodal
module Ac = Symref_mna.Ac
module Ladder = Symref_circuit.Rc_ladder
module Ota = Symref_circuit.Ota
module Gm_c = Symref_circuit.Gm_c
module Epoly = Symref_poly.Epoly
module Ef = Symref_numeric.Extfloat
module Ec = Symref_numeric.Extcomplex
module Cx = Symref_numeric.Cx

let check_float = Alcotest.(check (float 1e-9))

(* A synthetic polynomial with the paper's signature properties: consecutive
   coefficients separated by [slope] decades (1e6..1e12 in real ICs), and a
   log-concave profile ([curvature] decades of quadratic droop) like real
   determinant coefficient sequences — the curvature is what defeats any
   single scale pair beyond ~10th order (§3.1). *)
let steep_poly ?(alternate = false) ?(curvature = 0.) ~slope ~degree () =
  Epoly.of_coeffs
    (Array.init (degree + 1) (fun i ->
         let sign = if alternate && i mod 2 = 1 then -1. else 1. in
         let fi = float_of_int i in
         let exponent =
           -.(float_of_int slope *. fi) -. (curvature *. fi *. fi /. 2.)
         in
         let frac = exponent -. Float.round exponent in
         Ef.mul
           (Ef.of_decimal
              (sign *. (1. +. (0.37 *. float_of_int (i mod 3))))
              (int_of_float (Float.round exponent)))
           (Ef.of_float (Float.exp (frac *. Float.log 10.)))))

let steep_evaluator ?alternate ?curvature ?(gdeg_extra = 0) ~slope ~degree () =
  let p = steep_poly ?alternate ?curvature ~slope ~degree () in
  Evaluator.of_epoly ~gdeg:(degree + gdeg_extra)
    ~f0:(Float.exp (float_of_int slope *. Float.log 10.))
    ~g0:1. p

(* --- Band --- *)

let ec x = Ec.of_complex { Complex.re = x; im = 0. }

let test_band_detect () =
  (* Profile: 1e-20, 1e-3, 1, 1e-2, 1e-9, 1e-16 -> sigma=6 keeps >= 1e-7. *)
  let coeffs = Array.map ec [| 1e-20; 1e-3; 1.; 1e-2; 1e-9; 1e-16 |] in
  match Band.detect ~sigma:6 ~base:10 coeffs with
  | None -> Alcotest.fail "expected a band"
  | Some b ->
      Alcotest.(check int) "lo" 11 b.Band.lo;
      Alcotest.(check int) "hi" 13 b.Band.hi;
      Alcotest.(check int) "peak" 12 b.Band.peak;
      Alcotest.(check int) "width" 3 (Band.width b);
      Alcotest.(check bool) "contains" true (Band.contains b 11);
      Alcotest.(check bool) "not contains" false (Band.contains b 14)

let test_band_floor () =
  let coeffs = Array.map ec [| 1e-10; 3e-10; 2e-10 |] in
  Alcotest.(check bool) "band exists without floor" true
    (Band.detect ~sigma:6 ~base:0 coeffs <> None);
  Alcotest.(check bool) "floor suppresses noise window" true
    (Band.detect ~min_mag:(Ef.of_float 1e-5) ~sigma:6 ~base:0 coeffs = None);
  Alcotest.(check bool) "all-zero gives none" true
    (Band.detect ~sigma:6 ~base:0 (Array.map ec [| 0.; 0. |]) = None)

(* --- Scaling --- *)

let test_scaling_roundtrip () =
  let pair = { Scaling.f = 2.5e9; g = 1e4 } in
  let p = Ef.of_decimal (-3.3) (-40) in
  let n = Scaling.normalize ~gdeg:12 pair 5 p in
  let back = Scaling.denormalize ~gdeg:12 pair 5 n in
  Alcotest.(check bool) "roundtrip" true (Ef.approx_equal ~rel:1e-12 p back)

let test_scaling_tilt_direction () =
  let pair = { Scaling.f = 1e9; g = 1e4 } in
  let up =
    Scaling.tilt ~dir:`Up ~r:1. ~edge:12 ~edge_mag:(Ef.of_decimal 1. 110)
      ~peak:3 ~peak_mag:(Ef.of_decimal 1. 117) pair
  in
  Alcotest.(check bool) "up raises f/g" true (up.Scaling.f /. up.Scaling.g > 1e5);
  let down =
    Scaling.tilt ~dir:`Down ~r:1. ~edge:3 ~edge_mag:(Ef.of_decimal 1. 110)
      ~peak:12 ~peak_mag:(Ef.of_decimal 1. 117) pair
  in
  Alcotest.(check bool) "down lowers f/g" true (down.Scaling.f /. down.Scaling.g < 1e5)

let test_scaling_tilt_window_placement () =
  (* After the tilt, the old edge must outrank the old peak by ~10^(13+r):
     the new window starts near the old edge (paper's objective for eq 14). *)
  let gdeg = 20 in
  let pair = { Scaling.f = 1e8; g = 1e3 } in
  let p_m = Ef.of_decimal 1. 100 and p_e = Ef.of_decimal 1. 94 in
  let m = 4 and e = 11 in
  let tilted =
    Scaling.tilt ~dir:`Up ~r:1. ~edge:e ~edge_mag:p_e ~peak:m ~peak_mag:p_m pair
  in
  (* Reconstruct normalized magnitudes at the new scale. *)
  let renorm i mag =
    Ef.mul mag (Scaling.renormalize_factor ~gdeg ~from_:pair ~to_:tilted i)
  in
  let new_e = renorm e p_e and new_m = renorm m p_m in
  let gap = Ef.log10_abs new_e -. Ef.log10_abs new_m in
  Alcotest.(check (float 0.2)) "edge now 13+r decades above peak" 14. gap

let test_scaling_rebalance_cap () =
  let pair = { Scaling.f = 1e17; g = 1e2 } in
  let up =
    Scaling.tilt ~dir:`Up ~r:1. ~edge:30 ~edge_mag:(Ef.of_decimal 1. 90)
      ~peak:10 ~peak_mag:(Ef.of_decimal 1. 97) pair
  in
  Alcotest.(check bool) "f capped" true (up.Scaling.f <= Scaling.magnitude_cap *. 1.001);
  Alcotest.(check bool) "g positive" true (up.Scaling.g > 0.)

let test_gap_fill () =
  let a = { Scaling.f = 1e6; g = 1e2 } and b = { Scaling.f = 1e10; g = 1e4 } in
  let m = Scaling.gap_fill a b in
  check_float "f geometric mean" 1e8 m.Scaling.f;
  check_float "g geometric mean" 1e3 m.Scaling.g

(* --- Interp on synthetic evaluators --- *)

let test_interp_exact_recovery () =
  (* Mild coefficients: one pass recovers everything. *)
  let p = Epoly.of_floats [| 4.; -3.; 2.; 1.; -0.5 |] in
  let ev = Evaluator.of_epoly ~gdeg:4 ~f0:1. ~g0:1. p in
  let pass = Interp.run ev ~scale:{ Scaling.f = 1.; g = 1. } ~k:5 in
  Array.iteri
    (fun i c ->
      check_float (Printf.sprintf "coeff %d" i)
        (Ef.to_float (Epoly.coeff p i))
        (Ef.to_float (Ec.re c)))
    pass.Interp.normalized

let test_interp_conj_symmetry_halves_evals () =
  let p = Epoly.of_floats [| 1.; 2.; 3.; 4.; 5.; 6.; 7. |] in
  let mk () = Evaluator.of_epoly ~gdeg:6 ~f0:1. ~g0:1. p in
  let ev1 = mk () in
  let full = Interp.run ~conj_symmetry:false ev1 ~scale:{ Scaling.f = 1.; g = 1. } ~k:7 in
  let ev2 = mk () in
  let half = Interp.run ~conj_symmetry:true ev2 ~scale:{ Scaling.f = 1.; g = 1. } ~k:7 in
  Alcotest.(check int) "full evals" 7 full.Interp.evaluations;
  Alcotest.(check int) "half evals" 4 half.Interp.evaluations;
  Array.iteri
    (fun i c ->
      check_float (Printf.sprintf "agree %d" i)
        (Ef.to_float (Ec.re full.Interp.normalized.(i)))
        (Ef.to_float (Ec.re c)))
    half.Interp.normalized

let test_interp_deflation () =
  (* Known low coefficients; recover the high ones from a reduced problem. *)
  let p = Epoly.of_floats [| 10.; 20.; 3.; 4.; 5. |] in
  let ev = Evaluator.of_epoly ~gdeg:4 ~f0:1. ~g0:1. p in
  let known = [ (0, Ef.of_float 10.); (1, Ef.of_float 20.) ] in
  let pass = Interp.run ~known ~base:2 ev ~scale:{ Scaling.f = 1.; g = 1. } ~k:3 in
  Alcotest.(check int) "3 points only" 3 pass.Interp.points;
  check_float "p2" 3. (Ef.to_float (Ec.re pass.Interp.normalized.(0)));
  check_float "p3" 4. (Ef.to_float (Ec.re pass.Interp.normalized.(1)));
  check_float "p4" 5. (Ef.to_float (Ec.re pass.Interp.normalized.(2)))

let test_interp_pow2_dispatch () =
  (* k = 8 exercises the FFT path, k = 9 the direct IDFT; the recovered
     coefficients must agree. *)
  let p = Epoly.of_floats [| 1.; -2.; 3.; -4.; 5.; -6.; 7.; -8. |] in
  let run k =
    let ev = Evaluator.of_epoly ~gdeg:7 ~f0:1. ~g0:1. p in
    Interp.run ~conj_symmetry:false ev ~scale:{ Scaling.f = 1.; g = 1. } ~k
  in
  let a = run 8 and b = run 9 in
  for i = 0 to 7 do
    check_float
      (Printf.sprintf "pow2 vs direct coeff %d" i)
      (Ef.to_float (Ec.re b.Interp.normalized.(i)))
      (Ef.to_float (Ec.re a.Interp.normalized.(i)))
  done

(* Failure injection: a 1e-14-level multiplicative noise on every evaluation
   (worse than honest LU round-off) must not break 5-digit recovery — the
   sigma = 6 headroom of eq. 12 absorbs it. *)
let noisy_evaluator (ev : Evaluator.t) =
  let state = ref 123456789 in
  let noise () =
    state := (!state * 1103515245 + 12345) land 0x3FFFFFFF;
    (float_of_int !state /. float_of_int 0x3FFFFFFF -. 0.5) *. 2e-14
  in
  {
    ev with
    Evaluator.eval =
      (fun ~f ~g s ->
        let v = ev.Evaluator.eval ~f ~g s in
        Ec.mul_complex v { Complex.re = 1. +. noise (); im = noise () });
  }

let test_adaptive_with_noise () =
  let truth = steep_poly ~alternate:true ~curvature:0.3 ~slope:7 ~degree:40 () in
  let ev = noisy_evaluator (steep_evaluator ~alternate:true ~curvature:0.3 ~slope:7 ~degree:40 ()) in
  let r = Adaptive.run ev in
  Alcotest.(check bool) "converged" true r.Adaptive.converged;
  for i = 0 to 40 do
    if r.Adaptive.established.(i) then
      Alcotest.(check bool)
        (Printf.sprintf "coeff %d to >=4 digits under noise" i)
        true
        (Ef.approx_equal ~rel:1e-4 (Epoly.coeff truth i) r.Adaptive.coeffs.(i))
  done;
  (* Nothing silently lost: all 41 coefficients established. *)
  Alcotest.(check int) "all established" 41
    (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 r.Adaptive.established)

(* --- Naive engine: reproduces the paper's failure mode --- *)

let test_naive_on_mild_poly () =
  let p = Epoly.of_floats [| 1.; 0.5; 0.25; 0.125 |] in
  let ev = Evaluator.of_epoly ~gdeg:3 ~f0:1. ~g0:1. p in
  let r = Naive.run ev in
  (match r.Naive.band with
  | None -> Alcotest.fail "expected full band"
  | Some b ->
      Alcotest.(check int) "lo" 0 b.Band.lo;
      Alcotest.(check int) "hi" 3 b.Band.hi);
  Alcotest.(check (float 0.01)) "no garbage" 0. (Naive.garbage_fraction r)

let test_naive_fails_on_steep_poly () =
  (* 6 decades per power, degree 9: exactly the §2.2 scenario. *)
  let ev = steep_evaluator ~slope:6 ~degree:9 () in
  let r = Naive.run ev in
  (match r.Naive.band with
  | None -> Alcotest.fail "expected some band"
  | Some b ->
      Alcotest.(check bool)
        (Printf.sprintf "band [%d..%d] misses most coefficients" b.Band.lo b.Band.hi)
        true
        (Band.width b <= 4));
  Alcotest.(check bool)
    (Printf.sprintf "garbage fraction %.2f substantial" (Naive.garbage_fraction r))
    true
    (Naive.garbage_fraction r > 0.3)

(* --- Fixed scale: Table 1b logic --- *)

let test_fixed_scale_recovers_band () =
  let ev = steep_evaluator ~slope:6 ~degree:9 () in
  (* Frequency scale 1e6 makes scaled coefficients all ~1. *)
  let r = Fixed_scale.run ~f:1e6 ev in
  match r.Fixed_scale.band with
  | None -> Alcotest.fail "expected a band"
  | Some b ->
      Alcotest.(check int) "full band lo" 0 b.Band.lo;
      Alcotest.(check int) "full band hi" 9 b.Band.hi;
      (* Denormalized values match the construction. *)
      let truth = steep_poly ~slope:6 ~degree:9 () in
      for i = 0 to 9 do
        Alcotest.(check bool)
          (Printf.sprintf "coeff %d to 6 digits" i)
          true
          (Ef.approx_equal ~rel:1e-6 (Epoly.coeff truth i) r.Fixed_scale.denormalized.(i))
      done

let test_fixed_scale_partial_band () =
  (* Degree 40 at 6 decades/power: no single scale covers all 41. *)
  let ev = steep_evaluator ~curvature:0.3 ~slope:6 ~degree:40 () in
  let r = Fixed_scale.run ~f:1e6 ev in
  match r.Fixed_scale.band with
  | None -> Alcotest.fail "expected a band"
  | Some b ->
      Alcotest.(check bool)
        (Printf.sprintf "band [%d..%d] cannot cover 41 coefficients" b.Band.lo b.Band.hi)
        true
        (Band.width b < 41)

(* --- Adaptive: the paper's algorithm --- *)

let check_adaptive_recovers ?alternate ?curvature ?(config = Adaptive.default_config)
    ~slope ~degree () =
  let truth = steep_poly ?alternate ?curvature ~slope ~degree () in
  let ev = steep_evaluator ?alternate ?curvature ~slope ~degree () in
  let r = Adaptive.run ~config ev in
  Alcotest.(check bool) "converged" true r.Adaptive.converged;
  Alcotest.(check int) "effective order" degree r.Adaptive.effective_order;
  for i = 0 to degree do
    Alcotest.(check bool)
      (Printf.sprintf "coeff %d established" i)
      true r.Adaptive.established.(i);
    Alcotest.(check bool)
      (Printf.sprintf "coeff %d to >=5 digits (slope %d)" i slope)
      true
      (Ef.approx_equal ~rel:1e-5 (Epoly.coeff truth i) r.Adaptive.coeffs.(i))
  done;
  r

let test_adaptive_moderate () =
  let r = check_adaptive_recovers ~slope:6 ~degree:9 () in
  Alcotest.(check bool) "single pass suffices" true (r.Adaptive.passes <= 2)

let test_adaptive_large () =
  (* Degree 48, 7 decades/power with curvature: the uA741 situation; needs
     several bands. *)
  let r = check_adaptive_recovers ~alternate:true ~curvature:0.3 ~slope:7 ~degree:48 () in
  Alcotest.(check bool)
    (Printf.sprintf "multiple passes (%d)" r.Adaptive.passes)
    true
    (r.Adaptive.passes >= 3);
  Alcotest.(check bool) "3-6 passes expected" true (r.Adaptive.passes <= 8)

let test_adaptive_extreme_spread () =
  (* 12 decades per power over 30 orders: 360 decades total. *)
  ignore (check_adaptive_recovers ~curvature:0.5 ~slope:12 ~degree:30 ())

let test_adaptive_without_reduction () =
  let config = { Adaptive.default_config with Adaptive.reduce = false } in
  ignore (check_adaptive_recovers ~config ~alternate:true ~curvature:0.3 ~slope:7 ~degree:48 ())

let test_adaptive_overestimated_order () =
  (* True degree 5, order bound 12: coefficients 6..12 must be declared zero
     (the paper's "identically 0 over the n-th power" criterion). *)
  let truth = steep_poly ~slope:6 ~degree:5 () in
  let padded =
    Epoly.of_coeffs
      (Array.init 13 (fun i -> if i <= 5 then Epoly.coeff truth i else Ef.zero))
  in
  let ev =
    Evaluator.of_epoly ~gdeg:12 ~f0:1e6 ~g0:1. padded
  in
  (* order_bound is degree of padded = 5 after trim... rebuild with explicit
     bound by using a tiny but non-zero top coefficient instead. *)
  ignore ev;
  let ev =
    Evaluator.of_epoly ~gdeg:12 ~f0:1e6 ~g0:1.
      (Epoly.of_coeffs
         (Array.init 13 (fun i ->
              if i <= 5 then Epoly.coeff truth i
              else if i = 12 then Ef.of_decimal 1. (-300)
              else Ef.zero)))
  in
  let r = Adaptive.run ev in
  Alcotest.(check bool) "converged" true r.Adaptive.converged;
  for i = 0 to 5 do
    Alcotest.(check bool)
      (Printf.sprintf "low coeff %d" i)
      true
      (Ef.approx_equal ~rel:1e-5 (Epoly.coeff truth i) r.Adaptive.coeffs.(i))
  done;
  for i = 6 to 11 do
    Alcotest.(check bool)
      (Printf.sprintf "high coeff %d zero" i)
      true
      (Ef.is_zero r.Adaptive.coeffs.(i) || not r.Adaptive.established.(i))
  done

let test_adaptive_ratios () =
  let r = check_adaptive_recovers ~slope:6 ~degree:9 () in
  let ratios = Adaptive.coefficient_ratios r in
  Array.iter
    (fun d ->
      if not (Float.is_nan d) then
        Alcotest.(check (float 0.7)) "approx -6 decades per power" (-6.) d)
    ratios

(* --- Integration: RC ladder against the exact ABCD oracle --- *)

let ladder_reference n =
  Reference.generate (Ladder.circuit n) ~input:(Nodal.Vsrc_element "vin")
    ~output:(Nodal.Out_node Ladder.output_node)

let test_ladder_exact_match () =
  List.iter
    (fun n ->
      let r = ladder_reference n in
      let exact = Ladder.exact_denominator n in
      let den = Reference.denominator r in
      Alcotest.(check int)
        (Printf.sprintf "ladder %d: denominator degree" n)
        n (Epoly.degree den);
      (* Compare coefficient ratios p_i / p_0 (the engine's D carries an
         arbitrary constant factor relative to the ABCD form). *)
      let d0 = Epoly.coeff den 0 and e0 = Epoly.coeff exact 0 in
      for i = 0 to n do
        let got = Ef.div (Epoly.coeff den i) d0 in
        let want = Ef.div (Epoly.coeff exact i) e0 in
        Alcotest.(check bool)
          (Printf.sprintf "ladder %d coeff %d: %s vs %s" n i (Ef.to_string got)
             (Ef.to_string want))
          true
          (Ef.approx_equal ~rel:1e-5 got want)
      done;
      (* Numerator of the unloaded ladder is the constant N = H(0)*D(0). *)
      Alcotest.(check int)
        (Printf.sprintf "ladder %d: numerator degree" n)
        0
        r.Reference.num.Adaptive.effective_order)
    [ 1; 2; 5; 10; 25; 40 ]

(* --- Integration: reconstructed H(s) against direct solves --- *)

let check_transfer_consistency name reference problem omegas =
  List.iter
    (fun w ->
      let direct = (Nodal.eval problem (Cx.jomega w)).Nodal.h in
      let recon = Reference.eval reference (Cx.jomega w) in
      Alcotest.(check bool)
        (Printf.sprintf "%s at w=%g: %s vs %s" name w (Cx.to_string direct)
           (Cx.to_string recon))
        true
        (Cx.approx_equal ~rel:1e-4 direct recon))
    omegas

let test_ota_reference () =
  let input = Nodal.V_diff (Ota.input_p, Ota.input_n) in
  let output = Nodal.Out_node Ota.output in
  let r = Reference.generate Ota.circuit ~input ~output in
  Alcotest.(check bool) "num converged" true r.Reference.num.Adaptive.converged;
  Alcotest.(check bool) "den converged" true r.Reference.den.Adaptive.converged;
  let problem = Nodal.make Ota.circuit ~input ~output in
  check_transfer_consistency "ota" r problem [ 0.; 1e3; 1e6; 1e8; 1e10 ];
  Alcotest.(check bool) "dc gain matches" true
    (Float.abs (Reference.dc_gain r) > 100.)

(* dc_gain at a degenerate constant term: the divergence must keep the
   numerator's sign, and 0/0 must be reported as indeterminate, never as a
   confident +inf. *)
let set_coeff0 (res : Adaptive.result) v =
  let coeffs = Array.copy res.Adaptive.coeffs in
  coeffs.(0) <- v;
  { res with Adaptive.coeffs }

let test_dc_gain_signed_divergence () =
  let c = Ladder.circuit 2 in
  let r =
    Reference.generate c ~input:(Nodal.Vsrc_element "vin")
      ~output:(Nodal.Out_node Ladder.output_node)
  in
  Alcotest.(check bool) "baseline finite" true
    (Float.is_finite (Reference.dc_gain r));
  Alcotest.(check bool) "baseline positive" true (Reference.dc_gain r > 0.);
  let n0 = Epoly.coeff (Reference.numerator r) 0 in
  let degenerate = { r with Reference.den = set_coeff0 r.Reference.den Ef.zero } in
  Alcotest.(check bool) "n0 > 0, d0 = 0 -> +inf" true
    (Reference.dc_gain degenerate = infinity);
  let negated =
    { degenerate with Reference.num = set_coeff0 degenerate.Reference.num (Ef.neg n0) }
  in
  Alcotest.(check bool) "n0 < 0, d0 = 0 -> -inf" true
    (Reference.dc_gain negated = neg_infinity);
  let indeterminate =
    { degenerate with Reference.num = set_coeff0 degenerate.Reference.num Ef.zero }
  in
  Alcotest.(check bool) "0/0 -> nan" true
    (Float.is_nan (Reference.dc_gain indeterminate))

let test_gmc_reference () =
  let c = Gm_c.circuit 10 in
  let input = Nodal.V_single Gm_c.input_node in
  let output = Nodal.Out_node (Gm_c.output_node 10) in
  let r = Reference.generate c ~input ~output in
  Alcotest.(check int) "10th order denominator" 10
    r.Reference.den.Adaptive.effective_order;
  let problem = Nodal.make c ~input ~output in
  check_transfer_consistency "gm-c" r problem [ 0.; 1e5; 1e6; 1e7; 3e7 ]

let test_tuning_robustness () =
  (* The sigma and r knobs must not break convergence or change the answer
     beyond the requested precision. *)
  let problem =
    Nodal.make Ota.circuit
      ~input:(Nodal.V_diff (Ota.input_p, Ota.input_n))
      ~output:(Nodal.Out_node Ota.output)
  in
  let run config = Adaptive.run ~config (Evaluator.of_nodal problem ~num:false) in
  let base = run Adaptive.default_config in
  List.iter
    (fun config ->
      let r = run config in
      Alcotest.(check bool) "converged" true r.Adaptive.converged;
      Alcotest.(check int) "same order" base.Adaptive.effective_order
        r.Adaptive.effective_order;
      Array.iteri
        (fun i c ->
          if base.Adaptive.established.(i) && r.Adaptive.established.(i) then
            Alcotest.(check bool)
              (Printf.sprintf "coeff %d agrees across configs" i)
              true
              (Ef.approx_equal ~rel:1e-4 c r.Adaptive.coeffs.(i)))
        base.Adaptive.coeffs)
    [
      { Adaptive.default_config with Adaptive.sigma = 4 };
      { Adaptive.default_config with Adaptive.sigma = 8 };
      { Adaptive.default_config with Adaptive.r = 0.3 };
      { Adaptive.default_config with Adaptive.r = 2.5 };
      { Adaptive.default_config with Adaptive.dry_passes = 4 };
    ]

let test_ua741_reference () =
  let module Ua741 = Symref_circuit.Ua741 in
  let module N = Symref_circuit.Netlist in
  let r =
    Reference.generate Ua741.circuit
      ~input:(Nodal.V_diff (Ua741.input_p, Ua741.input_n))
      ~output:(Nodal.Out_node Ua741.output)
  in
  let den = r.Reference.den in
  Alcotest.(check bool) "den converged" true den.Adaptive.converged;
  Alcotest.(check bool)
    (Printf.sprintf "den order ~48 (%d)" den.Adaptive.effective_order)
    true
    (den.Adaptive.effective_order >= 40);
  Alcotest.(check bool) "d0 established" true den.Adaptive.established.(0);
  (* Adaptive needed several interpolations (Tables 2a/2b/3: three bands). *)
  let fertile =
    List.length (List.filter (fun p -> p.Adaptive.fresh > 0) den.Adaptive.reports)
  in
  Alcotest.(check bool)
    (Printf.sprintf "3+ productive bands (%d)" fertile)
    true (fertile >= 3);
  (* Fig. 2: Bode from coefficients vs the independent AC simulator. *)
  let freqs = Symref_numeric.Grid.decades ~start:1. ~stop:1e8 ~per_decade:5 in
  let with_sources =
    N.extend Ua741.circuit (fun b ->
        N.Builder.vsrc b "_tp" ~p:Ua741.input_p ~m:"0" 0.5;
        N.Builder.vsrc b "_tm" ~p:Ua741.input_n ~m:"0" (-0.5))
  in
  let sim = Ac.bode with_sources ~out_p:Ua741.output freqs in
  let dmag, dph = Reference.bode_vs_simulator r sim in
  Alcotest.(check bool)
    (Printf.sprintf "bode magnitude match (%.4f dB)" dmag)
    true (dmag < 0.01);
  Alcotest.(check bool)
    (Printf.sprintf "bode phase match (%.4f deg)" dph)
    true (dph < 0.1);
  (* DC open-loop gain in the 741's ballpark. *)
  let gain_db = 20. *. Float.log10 (Float.abs (Reference.dc_gain r)) in
  Alcotest.(check bool)
    (Printf.sprintf "dc gain %.1f dB" gain_db)
    true
    (gain_db > 80. && gain_db < 140.)

let test_domains_bit_identical () =
  (* Fanning the point evaluations of a pass over several domains must not
     change a single bit: same normalized coefficients, ceiling and counts.
     Exercised on the ua741 denominator, the paper's stress case. *)
  let module Ua741 = Symref_circuit.Ua741 in
  let problem =
    Nodal.make Ua741.circuit
      ~input:(Nodal.V_diff (Ua741.input_p, Ua741.input_n))
      ~output:(Nodal.Out_node Ua741.output)
  in
  let ev = Evaluator.of_nodal problem ~num:false in
  let scale = Scaling.initial ev in
  let k = Nodal.order_bound problem + 1 in
  let base = Interp.run ev ~scale ~k in
  List.iter
    (fun d ->
      let p = Interp.run ~domains:d ev ~scale ~k in
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d normalized bit-identical" d)
        true
        (p.Interp.normalized = base.Interp.normalized);
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d ceiling bit-identical" d)
        true
        (p.Interp.ceiling = base.Interp.ceiling);
      Alcotest.(check int)
        (Printf.sprintf "domains=%d same points" d)
        base.Interp.points p.Interp.points;
      Alcotest.(check int)
        (Printf.sprintf "domains=%d same evaluations" d)
        base.Interp.evaluations p.Interp.evaluations)
    [ 2; 3; 4 ];
  (* End to end: a full adaptive run with parallel passes. *)
  let config = { Adaptive.default_config with Adaptive.domains = 4 } in
  let seq = Adaptive.run (Evaluator.of_nodal problem ~num:false) in
  let par = Adaptive.run ~config (Evaluator.of_nodal problem ~num:false) in
  Alcotest.(check int) "same passes" seq.Adaptive.passes par.Adaptive.passes;
  Alcotest.(check bool) "same coefficients, bit for bit" true
    (seq.Adaptive.coeffs = par.Adaptive.coeffs
    && seq.Adaptive.established = par.Adaptive.established)

let test_share_reuse_invariance () =
  (* The pipeline switches are pure cost controls.  Sharing the num/den
     evaluation memoises identical computations, so coefficients match bit
     for bit; pattern reuse changes the pivot order round-off, so it matches
     to far better than the sigma = 6 digits the algorithm certifies. *)
  let gen ~share ~reuse =
    Reference.generate ~share ~reuse Ota.circuit
      ~input:(Nodal.V_diff (Ota.input_p, Ota.input_n))
      ~output:(Nodal.Out_node Ota.output)
  in
  let base = gen ~share:false ~reuse:true in
  let shared = gen ~share:true ~reuse:true in
  Alcotest.(check bool) "share: num bit-identical" true
    (base.Reference.num.Adaptive.coeffs = shared.Reference.num.Adaptive.coeffs);
  Alcotest.(check bool) "share: den bit-identical" true
    (base.Reference.den.Adaptive.coeffs = shared.Reference.den.Adaptive.coeffs);
  let seed = gen ~share:false ~reuse:false in
  List.iter
    (fun (label, a, b) ->
      Alcotest.(check bool) (label ^ " matches seed path") true
        (Epoly.approx_equal ~rel:1e-5 a b))
    [
      ("num", Reference.numerator seed, Reference.numerator shared);
      ("den", Reference.denominator seed, Reference.denominator shared);
    ]

let suite =
  [
    ( "band",
      [
        Alcotest.test_case "detect" `Quick test_band_detect;
        Alcotest.test_case "floor" `Quick test_band_floor;
      ] );
    ( "scaling",
      [
        Alcotest.test_case "normalize roundtrip" `Quick test_scaling_roundtrip;
        Alcotest.test_case "tilt direction" `Quick test_scaling_tilt_direction;
        Alcotest.test_case "tilt window placement (eq 14)" `Quick
          test_scaling_tilt_window_placement;
        Alcotest.test_case "rebalance cap (1e18)" `Quick test_scaling_rebalance_cap;
        Alcotest.test_case "gap fill (eq 16)" `Quick test_gap_fill;
      ] );
    ( "interp",
      [
        Alcotest.test_case "exact recovery" `Quick test_interp_exact_recovery;
        Alcotest.test_case "conjugate symmetry" `Quick test_interp_conj_symmetry_halves_evals;
        Alcotest.test_case "deflation (eq 17)" `Quick test_interp_deflation;
        Alcotest.test_case "fft dispatch" `Quick test_interp_pow2_dispatch;
        Alcotest.test_case "noise injection" `Quick test_adaptive_with_noise;
      ] );
    ( "naive",
      [
        Alcotest.test_case "mild polynomial ok" `Quick test_naive_on_mild_poly;
        Alcotest.test_case "steep polynomial garbage (Table 1a)" `Quick
          test_naive_fails_on_steep_poly;
      ] );
    ( "fixed-scale",
      [
        Alcotest.test_case "recovers order 9 (Table 1b)" `Quick
          test_fixed_scale_recovers_band;
        Alcotest.test_case "partial band at order 40" `Quick test_fixed_scale_partial_band;
      ] );
    ( "adaptive",
      [
        Alcotest.test_case "moderate polynomial" `Quick test_adaptive_moderate;
        Alcotest.test_case "48th order, 7 dec/power" `Quick test_adaptive_large;
        Alcotest.test_case "extreme spread" `Quick test_adaptive_extreme_spread;
        Alcotest.test_case "without reduction" `Quick test_adaptive_without_reduction;
        Alcotest.test_case "over-estimated order" `Quick test_adaptive_overestimated_order;
        Alcotest.test_case "coefficient ratios" `Quick test_adaptive_ratios;
      ] );
    ( "reference",
      [
        Alcotest.test_case "rc ladders vs exact oracle" `Quick test_ladder_exact_match;
        Alcotest.test_case "ota end-to-end" `Quick test_ota_reference;
        Alcotest.test_case "dc gain: signed divergence and 0/0" `Quick
          test_dc_gain_signed_divergence;
        Alcotest.test_case "gm-c end-to-end" `Quick test_gmc_reference;
        Alcotest.test_case "ua741 end-to-end (Tables 2-3, Fig 2)" `Quick
          test_ua741_reference;
        Alcotest.test_case "tuning robustness" `Quick test_tuning_robustness;
      ] );
    ( "pipeline",
      [
        Alcotest.test_case "domains bit-identical (ua741 den)" `Quick
          test_domains_bit_identical;
        Alcotest.test_case "share/reuse invariance" `Quick
          test_share_reuse_invariance;
      ] );
  ]
