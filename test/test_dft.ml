(* Tests for Unit_circle, Dft and Fft. *)

module Uc = Symref_dft.Unit_circle
module Dft = Symref_dft.Dft
module Fft = Symref_dft.Fft
module Poly = Symref_poly.Poly
module Cx = Symref_numeric.Cx

let approx = Cx.approx_equal ~rel:1e-9 ~abs:1e-9

let check_cx msg a b =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s vs %s" msg (Cx.to_string a) (Cx.to_string b))
    true (approx a b)

let test_points () =
  let p = Uc.points 4 in
  check_cx "w^0" Complex.one p.(0);
  check_cx "w^1" Cx.j p.(1);
  check_cx "w^2" (Cx.make (-1.) 0.) p.(2);
  check_cx "w^3" (Cx.make 0. (-1.)) p.(3);
  (* Axis points are exact, not just approximate. *)
  Alcotest.(check (float 0.)) "exact j re" 0. p.(1).re;
  Alcotest.(check (float 0.)) "exact -1 im" 0. p.(2).im;
  check_cx "negative index wraps" p.(3) (Uc.point 4 (-1))

let test_unit_modulus () =
  Array.iter
    (fun z -> Alcotest.(check (float 1e-12)) "modulus 1" 1. (Complex.norm z))
    (Uc.points 17)

let poly_values p k =
  Array.map (Poly.eval_complex p) (Uc.points k)

let test_idft_recovers_coeffs () =
  let p = Poly.of_list [ 5.; -4.; 3.; 2. ] in
  let k = 6 in
  let coeffs = Dft.inverse (poly_values p k) in
  for i = 0 to k - 1 do
    check_cx
      (Printf.sprintf "coeff %d" i)
      (Cx.of_float (Poly.coeff p i))
      coeffs.(i)
  done

let test_forward_inverse_roundtrip () =
  let x = Array.init 7 (fun i -> Cx.make (float_of_int i) (float_of_int (i * i))) in
  let y = Dft.inverse (Dft.forward x) in
  Array.iteri (fun i xi -> check_cx (Printf.sprintf "slot %d" i) xi y.(i)) x

let test_fft_matches_dft () =
  let x = Array.init 16 (fun i -> Cx.make (Float.sin (float_of_int i)) (Float.cos (2. *. float_of_int i))) in
  let a = Dft.forward x and b = Fft.forward x in
  Array.iteri (fun i ai -> check_cx (Printf.sprintf "fwd %d" i) ai b.(i)) a;
  let c = Dft.inverse x and d = Fft.inverse x in
  Array.iteri (fun i ci -> check_cx (Printf.sprintf "inv %d" i) ci d.(i)) c

let test_fft_validation () =
  Alcotest.(check bool) "pow2" true (Fft.is_pow2 64);
  Alcotest.(check bool) "not pow2" false (Fft.is_pow2 48);
  Alcotest.(check int) "next_pow2" 64 (Fft.next_pow2 33);
  Alcotest.(check int) "next_pow2 exact" 32 (Fft.next_pow2 32);
  Alcotest.check_raises "fft on non-pow2"
    (Invalid_argument "Fft: length must be a power of two") (fun () ->
      ignore (Fft.forward (Array.make 5 Complex.zero)))

let test_real_spectrum_completion () =
  let p = Poly.of_list [ 1.; 2.; 3.; 4.; 5. ] in
  let k = 9 in
  let full = poly_values p k in
  let half = Array.sub full 0 ((k / 2) + 1) in
  let completed = Dft.complete_real_spectrum k half in
  Array.iteri
    (fun i z -> check_cx (Printf.sprintf "point %d" i) full.(i) z)
    completed;
  let coeffs = Dft.inverse completed in
  for i = 0 to 4 do
    check_cx (Printf.sprintf "coeff %d" i) (Cx.of_float (Poly.coeff p i)) coeffs.(i)
  done

let test_inverse_real_spectrum () =
  (* Odd and even k, including the self-conjugate k/2 point. *)
  List.iter
    (fun k ->
      let p = Poly.of_list [ 1.; -2.; 3.; 0.5 ] in
      let full = poly_values p k in
      let half = Array.sub full 0 ((k / 2) + 1) in
      let via_full = Dft.inverse (Dft.complete_real_spectrum k half) in
      let via_half = Dft.inverse_real_spectrum k half in
      Array.iteri
        (fun i z ->
          check_cx (Printf.sprintf "k=%d coeff %d" k i) via_full.(i) z;
          (* Pair folding cancels the pairs' imaginary parts exactly; only
             the self-conjugate points contribute, and for a real signal
             their values are real, so the residue is exactly zero. *)
          Alcotest.(check (float 0.))
            (Printf.sprintf "k=%d exact real %d" k i)
            0. z.Complex.im)
        via_half)
    [ 1; 2; 5; 6; 9; 10 ];
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Dft.inverse_real_spectrum: need k/2 + 1 values")
    (fun () -> ignore (Dft.inverse_real_spectrum 9 (Array.make 3 Complex.zero)))

let prop_inverse_real_spectrum =
  let gen =
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 12) (float_range (-10.) 10.))
        (int_range 0 6))
  in
  QCheck2.Test.make ~name:"half-spectrum inverse matches completed full" ~count:100
    gen (fun (coeffs, extra) ->
      let p = Poly.of_list coeffs in
      let k = Poly.degree p + 1 + extra in
      if k < 1 then true
      else
        let half = Array.sub (poly_values p k) 0 ((k / 2) + 1) in
        let a = Dft.inverse (Dft.complete_real_spectrum k half) in
        let b = Dft.inverse_real_spectrum k half in
        Array.for_all2 (fun x y -> Cx.approx_equal ~rel:1e-9 ~abs:1e-9 x y) a b)

let prop_roundtrip =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 24)
        (map (fun (a, b) -> Cx.make a b) (pair (float_range (-5.) 5.) (float_range (-5.) 5.))))
  in
  QCheck2.Test.make ~name:"dft inverse . forward = id" ~count:100 gen (fun l ->
      let x = Array.of_list l in
      let y = Dft.inverse (Dft.forward x) in
      Array.for_all2 (fun a b -> Cx.approx_equal ~rel:1e-6 ~abs:1e-6 a b) x y)

let prop_interpolation_exact =
  (* Degree-n polynomial is exactly recovered from K >= n+1 points, and
     slots above the degree are ~0: the premise of eq. (5)/(6). *)
  let gen =
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 10) (float_range (-10.) 10.))
        (int_range 0 8))
  in
  QCheck2.Test.make ~name:"interpolation recovers coefficients" ~count:100 gen
    (fun (coeffs, extra) ->
      let p = Poly.of_list coeffs in
      let k = Poly.degree p + 1 + extra in
      if k < 1 then true
      else
        let got = Dft.inverse (poly_values p k) in
        Array.for_all
          (fun i ->
            Cx.approx_equal ~rel:1e-6 ~abs:1e-6 got.(i)
              (Cx.of_float (Poly.coeff p i)))
          (Array.init k Fun.id))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_roundtrip; prop_interpolation_exact; prop_inverse_real_spectrum ]

let suite =
  [
    ( "dft",
      [
        Alcotest.test_case "roots of unity" `Quick test_points;
        Alcotest.test_case "unit modulus" `Quick test_unit_modulus;
        Alcotest.test_case "idft recovers coefficients" `Quick test_idft_recovers_coeffs;
        Alcotest.test_case "roundtrip" `Quick test_forward_inverse_roundtrip;
        Alcotest.test_case "fft matches dft" `Quick test_fft_matches_dft;
        Alcotest.test_case "fft validation" `Quick test_fft_validation;
        Alcotest.test_case "real spectrum completion" `Quick test_real_spectrum_completion;
        Alcotest.test_case "half-spectrum inverse" `Quick test_inverse_real_spectrum;
      ]
      @ props );
  ]
