(* Chaos tests: the fault-injection registry itself, singular-point
   recovery in the interpolation pipeline, structured failure replies, and
   the client's retry/backoff loop — plus the bit-identity guarantees that
   make the hooks safe to leave compiled into the hot paths.

   Every test that enables the registry disables it in a [Fun.protect]
   finaliser: the suites run sequentially in one executable, so leaked
   injection state would contaminate whatever runs next. *)

module Inject = Symref_fault.Inject
module Adaptive = Symref_core.Adaptive
module Evaluator = Symref_core.Evaluator
module Reference = Symref_core.Reference
module Nodal = Symref_mna.Nodal
module Ua741 = Symref_circuit.Ua741
module Ladder = Symref_circuit.Rc_ladder
module Ef = Symref_numeric.Extfloat
module Serve = Symref_serve
module Protocol = Serve.Protocol
module Service = Serve.Service
module Scheduler = Serve.Scheduler
module Client = Serve.Client
module Errors = Serve.Errors
module Json = Symref_obs.Json

let with_registry f = Fun.protect ~finally:Inject.disable f

(* --- the registry itself --- *)

let test_registry_plans () =
  with_registry (fun () ->
      Alcotest.(check bool) "disabled: fire is false" false
        (Inject.fire Inject.eval_raise);
      Alcotest.(check int) "disabled: hits not counted" 0
        (Inject.hits Inject.eval_raise);
      Inject.enable ();
      Alcotest.(check bool) "enabled but disarmed" false
        (Inject.fire Inject.eval_raise);
      Alcotest.(check int) "hits counted while enabled" 1
        (Inject.hits Inject.eval_raise);
      Inject.arm Inject.eval_raise (Inject.Times { skip = 1; count = 2 });
      let fires = List.init 5 (fun _ -> Inject.fire Inject.eval_raise) in
      Alcotest.(check (list bool)) "Times {skip=1; count=2}"
        [ false; true; true; false; false ]
        fires;
      Alcotest.(check int) "fired count" 2 (Inject.fired Inject.eval_raise);
      Inject.arm Inject.eval_delay (Inject.Every 3);
      let fires = List.init 7 (fun _ -> Inject.fire Inject.eval_delay) in
      Alcotest.(check (list bool)) "Every 3"
        [ true; false; false; true; false; false; true ]
        fires;
      (* Probability decisions are a pure function of (seed, name, hit):
         re-arming under the same seed replays the exact firing pattern. *)
      let sample () =
        Inject.enable ~seed:42 ();
        Inject.arm Inject.eval_nan (Inject.Probability 0.5);
        List.init 64 (fun _ -> Inject.fire Inject.eval_nan)
      in
      let a = sample () and b = sample () in
      Alcotest.(check (list bool)) "seeded replay is identical" a b;
      let on = List.length (List.filter Fun.id a) in
      Alcotest.(check bool)
        (Printf.sprintf "p=0.5 fires a reasonable fraction (%d/64)" on)
        true
        (on > 16 && on < 48))

let test_env_spec_arming () =
  Fun.protect ~finally:(fun () ->
      Unix.putenv "SYMREF_FAULT" "";
      Inject.disable ())
  @@ fun () ->
  (match Inject.find "sparse.singular" with
  | Some p ->
      Alcotest.(check string) "find by name" "sparse.singular" (Inject.name p)
  | None -> Alcotest.fail "catalogue point findable by name");
  Alcotest.(check bool) "unknown point is None" true
    (Inject.find "no.such.point" = None);
  Alcotest.(check bool) "catalogue registered" true
    (List.length (Inject.all ()) >= 6);
  (* The SYMREF_FAULT syntax, end to end through the environment. *)
  Unix.putenv "SYMREF_FAULT"
    "evaluator.delay:skip=2,count=3,payload=5;sparse.singular:every=4";
  Inject.arm_from_env ();
  Alcotest.(check bool) "env arming enables" true (Inject.enabled ());
  Alcotest.(check (float 1e-9)) "payload parsed" 5.
    (Inject.payload Inject.eval_delay);
  let fires = List.init 6 (fun _ -> Inject.fire Inject.eval_delay) in
  Alcotest.(check (list bool)) "skip/count parsed"
    [ false; false; true; true; true; false ]
    fires;
  let fires = List.init 5 (fun _ -> Inject.fire Inject.sparse_singular) in
  Alcotest.(check (list bool)) "every parsed"
    [ true; false; false; false; true ]
    fires

(* --- bit-identity: the hooks must be invisible until armed --- *)

let ladder_result () =
  let ev =
    Evaluator.of_nodal
      (Nodal.make (Ladder.circuit 4) ~input:(Nodal.Vsrc_element "vin")
         ~output:(Nodal.Out_node Ladder.output_node))
      ~num:false
  in
  Adaptive.run ev

let coeff_strings (r : Adaptive.result) =
  Array.to_list (Array.map Ef.to_string r.Adaptive.coeffs)

let test_bit_identity_when_not_firing () =
  let clean = ladder_result () in
  Alcotest.(check int) "clean run: no singular retries" 0
    clean.Adaptive.diagnosis.Adaptive.singular_retries;
  (* Enabled but nothing armed (the SYMREF_FAULT_SEED-only CI
     configuration): hit counters tick, results do not move a bit. *)
  let enabled_unarmed =
    with_registry (fun () ->
        Inject.enable ~seed:7 ();
        let r = ladder_result () in
        Alcotest.(check bool) "hooks were reached" true
          (Inject.hits Inject.eval_nan > 0);
        Alcotest.(check int) "nothing fired" 0 (Inject.fired Inject.eval_nan);
        r)
  in
  let after_disable = ladder_result () in
  Alcotest.(check (list string)) "enabled-unarmed bit-identical"
    (coeff_strings clean)
    (coeff_strings enabled_unarmed);
  Alcotest.(check (list string)) "after-disable bit-identical"
    (coeff_strings clean)
    (coeff_strings after_disable)

(* --- singular-point recovery --- *)

let ua741_reference () =
  Reference.generate Ua741.circuit
    ~input:(Nodal.V_diff (Ua741.input_p, Ua741.input_n))
    ~output:(Nodal.Out_node Ua741.output)

let check_side_matches name (a : Adaptive.result) (b : Adaptive.result) =
  Alcotest.(check int)
    (name ^ ": same coefficient count")
    (Array.length a.Adaptive.coeffs)
    (Array.length b.Adaptive.coeffs);
  Array.iteri
    (fun i ca ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: coefficient %d matches to sigma digits" name i)
        true
        (Ef.approx_equal ~rel:1e-6 ca b.Adaptive.coeffs.(i)))
    a.Adaptive.coeffs

let test_singular_pivot_recovery_ua741 () =
  let clean = ua741_reference () in
  let injected =
    with_registry (fun () ->
        Inject.enable ();
        (* Two consecutive hits cover the (refactor -> fallback factor)
           pair of one evaluation whichever call hit 10 lands on, so one
           interpolation point sees a fully singular factorisation and the
           perturbed-point guard must recover it. *)
        Inject.arm Inject.sparse_singular (Inject.Times { skip = 10; count = 2 });
        let r = ua741_reference () in
        Alcotest.(check int) "both injected hits consumed" 2
          (Inject.fired Inject.sparse_singular);
        r)
  in
  Alcotest.(check bool) "num still converges" true
    injected.Reference.num.Adaptive.converged;
  Alcotest.(check bool) "den still converges" true
    injected.Reference.den.Adaptive.converged;
  let retries (t : Reference.t) =
    t.Reference.num.Adaptive.diagnosis.Adaptive.singular_retries
    + t.Reference.den.Adaptive.diagnosis.Adaptive.singular_retries
  in
  let giveups (t : Reference.t) =
    t.Reference.num.Adaptive.diagnosis.Adaptive.retry_giveups
    + t.Reference.den.Adaptive.diagnosis.Adaptive.retry_giveups
  in
  Alcotest.(check bool) "recovery counted" true (retries injected >= 1);
  Alcotest.(check int) "no give-ups" 0 (giveups injected);
  Alcotest.(check int) "clean run recovered nothing" 0 (retries clean);
  check_side_matches "num" clean.Reference.num injected.Reference.num;
  check_side_matches "den" clean.Reference.den injected.Reference.den;
  (* The verdict the serve payload and [symref doctor] report. *)
  let h = Reference.health injected in
  Alcotest.(check bool) "injected run still verifies healthy" true
    h.Reference.healthy

let test_nan_poisoning_recovery () =
  let clean = ladder_result () in
  let injected =
    with_registry (fun () ->
        Inject.enable ();
        (* NaN-poison the 2nd evaluation point: the assembled matrix is all
           NaN, the pivot search fails, and the evaluation degrades to the
           singular path the guard retries. *)
        Inject.arm Inject.eval_nan (Inject.Times { skip = 1; count = 1 });
        let r = ladder_result () in
        Alcotest.(check int) "poisoned exactly once" 1
          (Inject.fired Inject.eval_nan);
        r)
  in
  Alcotest.(check bool) "still converges" true injected.Adaptive.converged;
  Alcotest.(check bool) "recovery counted" true
    (injected.Adaptive.diagnosis.Adaptive.singular_retries >= 1);
  Alcotest.(check int) "no give-ups" 0
    injected.Adaptive.diagnosis.Adaptive.retry_giveups;
  check_side_matches "ladder den" clean injected

(* --- structured failure replies --- *)

let rc_text = "rc\nr1 in out 1k\nc1 out 0 1u\nv1 in 0 ac 1\n.end\n"

let reference_job ?id ?timeout_ms text =
  { Protocol.default_job with Protocol.id; netlist = `Text text; timeout_ms }

let test_injected_exception_is_structured () =
  with_registry (fun () ->
      Inject.enable ();
      Inject.arm Inject.eval_raise (Inject.Times { skip = 0; count = 1 });
      let s = Service.create () in
      let r = Service.run_job s (reference_job ~id:"chaos" rc_text) in
      Alcotest.(check bool) "error status" true
        (r.Protocol.status = Protocol.Error);
      Alcotest.(check (option string)) "kind" (Some "injected")
        (Protocol.error_kind r);
      (* The worker survives: the same service computes the next job. *)
      Inject.reset ();
      let ok = Service.run_job s (reference_job ~id:"after" rc_text) in
      Alcotest.(check bool) "service alive after injected fault" true
        (ok.Protocol.status = Protocol.Ok);
      Service.shutdown s)

let test_bad_spec_is_typed () =
  (match Service.parse_output "a,b,c" with
  | exception Errors.Error (Errors.Bad_spec _ as e) ->
      Alcotest.(check string) "spec kind" "spec" (Errors.kind e);
      Alcotest.(check bool) "spec errors are not transient" false
        (Errors.transient e)
  | exception e -> Alcotest.fail ("expected Bad_spec, got " ^ Printexc.to_string e)
  | _ -> Alcotest.fail "malformed output spec must raise");
  let s = Service.create () in
  let r =
    Service.run_job s
      { (reference_job ~id:"spec" rc_text) with Protocol.input = "bogus:x" }
  in
  Alcotest.(check bool) "error status" true (r.Protocol.status = Protocol.Error);
  Alcotest.(check (option string)) "reply kind" (Some "spec")
    (Protocol.error_kind r);
  Service.shutdown s

(* --- client backoff --- *)

let test_backoff_schedule () =
  let b = { Client.default_backoff with Client.seed = 3 } in
  let s1 = Client.backoff_schedule b and s2 = Client.backoff_schedule b in
  Alcotest.(check int) "attempts-1 delays" (b.Client.attempts - 1)
    (Array.length s1);
  Alcotest.(check (array (float 0.))) "schedule is deterministic" s1 s2;
  Array.iteri
    (fun n d ->
      let nominal =
        Float.min b.Client.max_delay_ms
          (b.Client.base_delay_ms *. (b.Client.multiplier ** float_of_int n))
      in
      Alcotest.(check bool)
        (Printf.sprintf "delay %d within the jitter band of %g" n nominal)
        true
        (Float.abs (d -. nominal) <= (b.Client.jitter /. 2.) *. nominal +. 1e-9))
    s1;
  (* The cap holds even when the exponential has run far past it. *)
  let capped =
    Client.backoff_schedule
      {
        Client.attempts = 8;
        base_delay_ms = 100.;
        multiplier = 10.;
        max_delay_ms = 250.;
        jitter = 0.2;
        seed = 0;
      }
  in
  Array.iter
    (fun d ->
      Alcotest.(check bool) "capped delay" true (d <= 250. *. 1.1 +. 1e-9))
    capped;
  let different = Client.backoff_schedule { b with Client.seed = 4 } in
  Alcotest.(check bool) "different seed, different jitter" true
    (s1 <> different)

(* A daemon on a capacity-1 queue whose single slot is held by a gated job:
   submissions are deterministically Busy until the gate opens. *)
let with_gated_daemon f =
  let dir = Filename.temp_dir "symref-fault" "" in
  let socket_path = Filename.concat dir "symref.sock" in
  let addr = Serve.Transport.Unix_sock socket_path in
  (* queue:0 — backpressure must surface as a reply, not as queueing. *)
  let config =
    { Service.default_config with Service.capacity = 1; queue = 0; workers = 1 }
  in
  let daemon = Serve.Daemon.create ~config ~listen:[ addr ] () in
  let daemon_thread = Thread.create Serve.Daemon.serve daemon in
  let sched = Service.scheduler (Serve.Daemon.service daemon) in
  let gate = Mutex.create () in
  let opened = Condition.create () in
  let released = ref false in
  let release () =
    Mutex.lock gate;
    released := true;
    Condition.broadcast opened;
    Mutex.unlock gate
  in
  let hold () =
    match
      Scheduler.submit sched (fun () ->
          Mutex.lock gate;
          while not !released do
            Condition.wait opened gate
          done;
          Mutex.unlock gate;
          Protocol.ok (Json.Obj []))
    with
    | Scheduler.Admitted _ -> ()
    | Scheduler.Shed _ | Scheduler.Stopped ->
        Alcotest.fail "gated job must be admitted"
  in
  Fun.protect
    ~finally:(fun () ->
      release ();
      (try
         Serve.Client.with_connection ~addr (fun c ->
             ignore (Serve.Client.request c Protocol.Shutdown))
       with _ -> ());
      Thread.join daemon_thread;
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      (try Unix.rmdir dir with Unix.Unix_error _ -> ()))
    (fun () -> f ~addr ~sched ~hold ~release)

let test_busy_retry_until_admitted () =
  with_gated_daemon (fun ~addr ~sched ~hold ~release ->
      hold ();
      (* The shed reply's retry hint is the scheduler's own estimate — read
         it up front so the slept delay can be asserted exactly. *)
      let hint = Scheduler.retry_after_estimate sched in
      let slept = ref [] in
      let sleep ms =
        slept := ms :: !slept;
        (* Opening the gate inside the backoff sleep makes the next attempt
           deterministically admissible: the slot drains before we retry. *)
        release ();
        Scheduler.drain sched
      in
      let reply =
        Client.retry_request ~sleep ~addr
          (Protocol.Submit (reference_job ~id:"busy-then-ok" rc_text))
      in
      Alcotest.(check bool) "admitted after backoff" true
        (reply.Protocol.status = Protocol.Ok);
      Alcotest.(check int) "exactly one retry slept" 1 (List.length !slept);
      let expected =
        Client.delay_after Client.default_backoff ~attempt:0
          ~retry_after_ms:(Some hint)
      in
      Alcotest.(check (float 1e-9)) "slept the server's retry-after hint"
        expected (List.hd !slept))

let test_busy_giveup_is_structured () =
  with_gated_daemon (fun ~addr ~sched ~hold ~release:_ ->
      hold ();
      let hint = Scheduler.retry_after_estimate sched in
      let backoff = { Client.default_backoff with Client.attempts = 3 } in
      let slept = ref [] in
      let sleep ms = slept := ms :: !slept in
      let reply =
        Client.retry_request ~backoff ~sleep ~addr
          (Protocol.Submit (reference_job ~id:"always-busy" rc_text))
      in
      (* Budget exhausted: the final Overloaded reply comes back as a value,
         not an exception — the caller decides what backpressure means. *)
      Alcotest.(check bool) "gave up with the Overloaded reply" true
        (reply.Protocol.status = Protocol.Overloaded);
      Alcotest.(check (option string)) "overloaded kind" (Some "overloaded")
        (Protocol.error_kind reply);
      Alcotest.(check bool) "reply carries the retry hint" true
        (Protocol.retry_after_ms reply <> None);
      (* Every attempt saw the same empty queue, so every hint is the same;
         the jitter still varies by attempt. *)
      let expected =
        List.map
          (fun n ->
            Client.delay_after backoff ~attempt:n ~retry_after_ms:(Some hint))
          [ 0; 1 ]
      in
      Alcotest.(check (list (float 1e-9))) "slept the hinted schedule" expected
        (List.rev !slept))

(* --- daemon socket faults --- *)

let test_dropped_connection_retry () =
  with_gated_daemon (fun ~addr ~sched:_ ~hold:_ ~release:_ ->
      with_registry (fun () ->
          Inject.enable ();
          (* Hit 0 is the hello banner of the first connection; hit 1 is
             its first reply — dropped.  The retry's fresh connection takes
             hits 2 and 3 untouched. *)
          Inject.arm Inject.serve_drop (Inject.Times { skip = 1; count = 1 });
          (match
             Serve.Client.with_connection ~addr (fun c ->
                 Serve.Client.request c Protocol.Hello)
           with
          | exception Errors.Error (Errors.Connection_closed _) -> ()
          | exception e ->
              Alcotest.fail ("expected Connection_closed, got " ^ Printexc.to_string e)
          | _ -> Alcotest.fail "dropped reply must raise");
          Alcotest.(check int) "one drop fired" 1 (Inject.fired Inject.serve_drop);
          (* The same fault, healed by the retry loop. *)
          Inject.arm Inject.serve_drop (Inject.Times { skip = 1; count = 1 });
          let slept = ref 0 in
          let reply =
            Client.retry_request
              ~sleep:(fun _ -> incr slept)
              ~addr Protocol.Hello
          in
          Alcotest.(check bool) "retry recovered" true
            (reply.Protocol.status = Protocol.Ok);
          Alcotest.(check int) "one backoff sleep" 1 !slept))

let test_partial_write_detected () =
  with_gated_daemon (fun ~addr ~sched:_ ~hold:_ ~release:_ ->
      with_registry (fun () ->
          Inject.enable ();
          Inject.arm Inject.serve_partial (Inject.Times { skip = 1; count = 1 });
          (match
             Serve.Client.with_connection ~addr (fun c ->
                 Serve.Client.request c Protocol.Hello)
           with
          | exception Failure _ ->
              (* Half a JSON line is a protocol violation, loudly. *)
              ()
          | exception Errors.Error (Errors.Connection_closed _) ->
              (* ... unless the runtime saw the shutdown before the bytes. *)
              ()
          | exception e ->
              Alcotest.fail ("expected a protocol failure, got " ^ Printexc.to_string e)
          | _ -> Alcotest.fail "truncated reply must not parse");
          Alcotest.(check int) "one partial write fired" 1
            (Inject.fired Inject.serve_partial);
          (* The daemon survives the injected connection death. *)
          let reply =
            Serve.Client.with_connection ~addr (fun c ->
                Serve.Client.request c Protocol.Hello)
          in
          Alcotest.(check bool) "daemon alive afterwards" true
            (reply.Protocol.status = Protocol.Ok)))

let suite =
  [
    ( "fault",
      [
        Alcotest.test_case "registry: plans, determinism, isolation" `Quick
          test_registry_plans;
        Alcotest.test_case "registry: catalogue lookup" `Quick
          test_env_spec_arming;
        Alcotest.test_case "bit-identity: enabled-unarmed and disabled" `Quick
          test_bit_identity_when_not_firing;
        Alcotest.test_case "recovery: forced singular pivot (ua741)" `Quick
          test_singular_pivot_recovery_ua741;
        Alcotest.test_case "recovery: NaN-poisoned evaluation point" `Quick
          test_nan_poisoning_recovery;
        Alcotest.test_case "service: injected exception is structured" `Quick
          test_injected_exception_is_structured;
        Alcotest.test_case "service: bad spec is typed" `Quick
          test_bad_spec_is_typed;
        Alcotest.test_case "client: backoff schedule deterministic, capped"
          `Quick test_backoff_schedule;
        Alcotest.test_case "client: Busy retries until admitted" `Quick
          test_busy_retry_until_admitted;
        Alcotest.test_case "client: Busy give-up returns the reply" `Quick
          test_busy_giveup_is_structured;
        Alcotest.test_case "daemon: dropped connection retried" `Quick
          test_dropped_connection_retry;
        Alcotest.test_case "daemon: partial write detected" `Quick
          test_partial_write_detected;
      ] );
  ]
