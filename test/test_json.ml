(* Property tests for the dependency-free Symref_obs.Json codec, which the
   serve protocol and the result cache now lean on: print -> parse must be
   the identity (so cached payload strings replay bit-identically), and the
   parser must reject truncated or extended input rather than guess. *)

module Json = Symref_obs.Json

(* --- generators --- *)

(* Finite floats only: the printer emits %.17g, and nan/inf are not JSON. *)
let num_gen =
  QCheck2.Gen.(
    oneof
      [
        map float_of_int (int_range (-1_000_000) 1_000_000);
        map
          (fun (m, e) -> m *. (10. ** float_of_int e))
          (pair (float_range (-10.) 10.) (int_range (-30) 30));
      ])

(* Strings over the full byte range below 0x80 plus some multi-byte UTF-8,
   exercising the control-character escapes. *)
let string_gen =
  QCheck2.Gen.(
    map
      (fun cs -> String.concat "" cs)
      (list_size (int_range 0 12)
         (oneof
            [
              map (fun c -> String.make 1 (Char.chr c)) (int_range 0 127);
              return "\xc3\xa9" (* é *);
              return "\"";
              return "\\";
            ])))

let rec value_gen depth =
  QCheck2.Gen.(
    if depth = 0 then
      oneof
        [
          return Json.Null;
          map (fun b -> Json.Bool b) bool;
          map (fun x -> Json.Num x) num_gen;
          map (fun s -> Json.Str s) string_gen;
        ]
    else
      frequency
        [
          (2, value_gen 0);
          ( 1,
            map
              (fun vs -> Json.Arr vs)
              (list_size (int_range 0 4) (value_gen (depth - 1))) );
          ( 1,
            map
              (fun kvs -> Json.Obj kvs)
              (list_size (int_range 0 4)
                 (pair string_gen (value_gen (depth - 1)))) );
        ])

let json_gen = value_gen 3

(* Object field lookup keeps the first binding, so equality after a round
   trip holds on the printed form; compare those. *)
let prop_roundtrip =
  QCheck2.Test.make ~name:"json print/parse round trip" ~count:500 json_gen
    (fun v ->
      let s = Json.to_string v in
      Json.to_string (Json.parse s) = s)

let prop_print_canonical =
  (* print o parse o print = print: what the result cache relies on to
     replay stored payloads bit-identically. *)
  QCheck2.Test.make ~name:"json printer is canonical" ~count:500 json_gen
    (fun v ->
      let s = Json.to_string v in
      let s' = Json.to_string (Json.parse s) in
      let s'' = Json.to_string (Json.parse s') in
      s' = s && s'' = s')

let prop_truncation_rejected =
  (* Any strict prefix of a printed object/array/string must fail to parse:
     prefixes of bare numbers ("12" of "123") are themselves valid. *)
  let structured_gen =
    QCheck2.Gen.(
      oneof
        [
          map (fun vs -> Json.Arr vs) (list_size (int_range 0 3) (value_gen 1));
          map
            (fun kvs -> Json.Obj kvs)
            (list_size (int_range 0 3) (pair string_gen (value_gen 1)));
          map (fun s -> Json.Str s) string_gen;
        ])
  in
  QCheck2.Test.make ~name:"json rejects truncated input" ~count:300
    QCheck2.Gen.(pair structured_gen (float_range 0. 1.))
    (fun (v, frac) ->
      let s = Json.to_string v in
      let n = String.length s in
      let cut = Int.max 0 (Int.min (n - 1) (int_of_float (frac *. float_of_int n))) in
      let prefix = String.sub s 0 cut in
      match Json.parse prefix with
      | _ -> false
      | exception Failure _ -> true)

let prop_trailing_garbage_rejected =
  QCheck2.Test.make ~name:"json rejects trailing garbage" ~count:300 json_gen
    (fun v ->
      let s = Json.to_string v ^ "!" in
      match Json.parse s with
      | _ -> false
      | exception Failure _ -> true)

(* --- directed cases --- *)

let check_parses s expected () =
  Alcotest.(check string)
    s expected
    (Json.to_string (Json.parse s))

let test_control_chars () =
  (* Control characters must be escaped on output and decoded on input. *)
  let v = Json.Str "a\nb\tc\x01d" in
  let s = Json.to_string v in
  Alcotest.(check bool) "no raw control bytes in output" true
    (String.for_all (fun c -> Char.code c >= 0x20) s);
  match Json.parse s with
  | Json.Str decoded -> Alcotest.(check string) "decoded" "a\nb\tc\x01d" decoded
  | _ -> Alcotest.fail "expected a string"

let test_unicode_escape () =
  match Json.parse "\"A\\u00e9\\u263a\"" with
  | Json.Str s ->
      Alcotest.(check string) "\\uXXXX decodes to UTF-8" "A\xc3\xa9\xe2\x98\xba" s
  | _ -> Alcotest.fail "expected a string"

let test_deep_nesting () =
  let depth = 512 in
  let rec build n = if n = 0 then Json.Num 1. else Json.Arr [ build (n - 1) ] in
  let v = build depth in
  let s = Json.to_string v in
  Alcotest.(check string) "512-deep nesting round trips" s
    (Json.to_string (Json.parse s))

let test_number_forms () =
  check_parses "-0.5" "-0.5" ();
  check_parses "1e3" "1000" ();
  check_parses "[1,2.5,-3]" "[1,2.5,-3]" ();
  (* Integral floats print without a decimal point. *)
  Alcotest.(check string) "integral" "42" (Json.to_string (Json.Num 42.))

let test_rejects () =
  let rejected s =
    match Json.parse s with
    | _ -> Alcotest.fail (Printf.sprintf "%S must be rejected" s)
    | exception Failure _ -> ()
  in
  List.iter rejected
    [ ""; "{"; "[1,"; "\"ab"; "tru"; "nul"; "{\"a\":}"; "[1] [2]"; "01a" ]

let suite =
  [
    ( "json",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_roundtrip;
          prop_print_canonical;
          prop_truncation_rejected;
          prop_trailing_garbage_rejected;
        ]
      @ [
          Alcotest.test_case "control characters escape and decode" `Quick
            test_control_chars;
          Alcotest.test_case "\\uXXXX escapes decode" `Quick test_unicode_escape;
          Alcotest.test_case "deep nesting round trips" `Quick test_deep_nesting;
          Alcotest.test_case "number forms" `Quick test_number_forms;
          Alcotest.test_case "malformed inputs rejected" `Quick test_rejects;
        ] );
  ]
