(* The fused unboxed kernel: bit-identity against the boxed
   refactor+det+solve chain, allocation-freedom of the steady-state inner
   loop, workspace-reuse invariance, and fault-injection parity.

   "Bit-identical" here is literal: every comparison goes through
   [Int64.bits_of_float], so even NaN payloads and [-0.] must match. *)

module Sparse = Symref_linalg.Sparse
module Kernel = Symref_linalg.Kernel
module Ec = Symref_numeric.Extcomplex
module Nodal = Symref_mna.Nodal
module Random_net = Symref_circuit.Random_net
module Ua741 = Symref_circuit.Ua741
module Uc = Symref_dft.Unit_circle
module Inject = Symref_fault.Inject

let bits = Int64.bits_of_float

let check_float_bits msg a b =
  Alcotest.(check int64) msg (bits a) (bits b)

let check_complex_bits msg (a : Complex.t) (b : Complex.t) =
  check_float_bits (msg ^ " re") a.Complex.re b.Complex.re;
  check_float_bits (msg ^ " im") a.Complex.im b.Complex.im

let check_ec_bits msg (a : Ec.t) (b : Ec.t) =
  check_complex_bits (msg ^ " mantissa") a.Ec.c b.Ec.c;
  Alcotest.(check int) (msg ^ " exponent") a.Ec.e b.Ec.e

(* --- frexp_exp ----------------------------------------------------------- *)

let prop_frexp_exp =
  QCheck2.Test.make ~name:"frexp_exp = snd Float.frexp across the full range"
    ~count:2000
    QCheck2.Gen.(
      oneof
        [
          float_bound_exclusive 1e308;
          (* deep subnormals and huge values via exponent sampling *)
          map2
            (fun m e -> Float.ldexp (Float.abs m) e)
            (float_bound_exclusive 1.) (int_range (-1080) 1024);
        ])
    (fun a ->
      let a = Float.abs a in
      (not (Float.is_finite a)) || a = 0.
      || Kernel.frexp_exp a = snd (Float.frexp a))

let test_frexp_exp_edges () =
  List.iter
    (fun a ->
      Alcotest.(check int)
        (Printf.sprintf "frexp_exp %.17g" a)
        (snd (Float.frexp a))
        (Kernel.frexp_exp a))
    [
      min_float;
      max_float;
      Float.ldexp 1. (-1074) (* smallest subnormal *);
      Float.ldexp 1. (-1022);
      Float.ldexp 0.75 (-1060);
      1.;
      0.5;
      2.;
      0x1p512;
      0x1p-512;
      1e-300;
      1e300;
      Float.pi;
    ]

(* --- Sparse-level bit-identity ------------------------------------------- *)

(* Deterministic LCG so every run exercises the same matrices. *)
let lcg seed =
  let state = ref (Int64.of_int seed) in
  fun () ->
    state :=
      Int64.add (Int64.mul !state 6364136223846793005L) 1442695040888963407L;
    Int64.to_float (Int64.shift_right_logical !state 11)
    /. 9007199254740992.0

let random_system rand n =
  let b = Sparse.create n in
  for i = 0 to n - 1 do
    (* Strong diagonal so replays at perturbed values rarely bail — the
       bail-parity case is covered separately below. *)
    Sparse.add b i i
      { Complex.re = 2. +. rand (); im = 1. +. rand () };
    let offs = 1 + (int_of_float (rand () *. 3.) mod 3) in
    for _ = 1 to offs do
      let j = int_of_float (rand () *. float_of_int n) mod n in
      if j <> i then
        Sparse.add b i j
          { Complex.re = (rand () -. 0.5) *. 0.8; im = (rand () -. 0.5) *. 0.8 }
    done
  done;
  let rhs =
    Array.init n (fun _ ->
        { Complex.re = rand () -. 0.5; im = rand () -. 0.5 })
  in
  (b, rhs)

(* One value assignment: the same sparsity, perturbed values — what a new
   unit-circle point looks like to a learned pattern. *)
let perturbed rand coords base =
  ignore coords;
  Array.map
    (fun (v : Complex.t) ->
      {
        Complex.re = v.Complex.re *. (0.5 +. rand ());
        im = v.Complex.im *. (0.5 +. rand ());
      })
    base

let test_sparse_bit_identity () =
  let rand = lcg 12345 in
  for trial = 0 to 19 do
    let n = 4 + (trial mod 12) in
    let b, rhs = random_system rand n in
    match Sparse.symbolic b with
    | None -> Alcotest.fail "symbolic factorisation unexpectedly failed"
    | Some (pat, _) ->
        let coords = Sparse.pattern_coords pat in
        let base =
          Array.map
            (fun (i, j) ->
              (Sparse.to_dense b).(i).(j))
            coords
        in
        let ws = Kernel.workspace (Sparse.pattern_program pat) in
        for point = 0 to 4 do
          let vals = if point = 0 then base else perturbed rand coords base in
          (* Boxed chain. *)
          let boxed = Sparse.refactor pat vals in
          (* Kernel chain. *)
          Kernel.begin_point ws;
          Array.iteri
            (fun e (v : Complex.t) ->
              Kernel.set_value ws e ~re:v.Complex.re ~im:v.Complex.im)
            vals;
          Array.iteri
            (fun r (v : Complex.t) ->
              Kernel.set_rhs ws r ~re:v.Complex.re ~im:v.Complex.im)
            rhs;
          let ok = Kernel.run ws in
          let tag = Printf.sprintf "trial %d point %d" trial point in
          (match boxed with
          | None ->
              Alcotest.(check bool) (tag ^ ": kernel bails with refactor")
                false ok
          | Some factor ->
              Alcotest.(check bool) (tag ^ ": kernel succeeds with refactor")
                true ok;
              check_ec_bits (tag ^ " det") (Sparse.det factor) (Kernel.det ws);
              Kernel.solve_into ws;
              let x = Sparse.solve factor rhs in
              let xr = Kernel.solution_re ws and xi = Kernel.solution_im ws in
              Array.iteri
                (fun j (v : Complex.t) ->
                  check_float_bits
                    (Printf.sprintf "%s x.(%d) re" tag j)
                    v.Complex.re xr.(j);
                  check_float_bits
                    (Printf.sprintf "%s x.(%d) im" tag j)
                    v.Complex.im xi.(j))
                x)
        done
  done

let test_bail_parity () =
  (* Degrade a pivot towards zero until the threshold floor trips: the
     kernel must bail on exactly the same value assignments as the boxed
     refactor. *)
  let rand = lcg 777 in
  let b, rhs = random_system rand 8 in
  ignore rhs;
  match Sparse.symbolic b with
  | None -> Alcotest.fail "symbolic factorisation unexpectedly failed"
  | Some (pat, _) ->
      let coords = Sparse.pattern_coords pat in
      let dense = Sparse.to_dense b in
      let base = Array.map (fun (i, j) -> dense.(i).(j)) coords in
      let ws = Kernel.workspace (Sparse.pattern_program pat) in
      let bails = ref 0 in
      List.iter
        (fun scale ->
          (* Shrink every diagonal entry: sooner or later a reused pivot
             loses its dominance. *)
          let vals =
            Array.mapi
              (fun e (v : Complex.t) ->
                let i, j = coords.(e) in
                if i = j then
                  { Complex.re = v.Complex.re *. scale; im = v.Complex.im *. scale }
                else v)
              base
          in
          let boxed = Sparse.refactor pat vals in
          Kernel.begin_point ws;
          Array.iteri
            (fun e (v : Complex.t) ->
              Kernel.set_value ws e ~re:v.Complex.re ~im:v.Complex.im)
            vals;
          let ok = Kernel.run ws in
          Alcotest.(check bool)
            (Printf.sprintf "scale %g: bail parity" scale)
            (boxed <> None) ok;
          if not ok then incr bails)
        [ 1.; 0.1; 1e-3; 1e-6; 1e-9; 1e-12; 0. ];
      Alcotest.(check bool) "the sweep actually triggered bailouts" true
        (!bails > 0)

let test_zero_alloc () =
  (* The acceptance bar of the fused engine: once the workspace exists, a
     full point — scatter, replay, forward and back substitution — costs
     zero words of heap.  [Gc.minor_words] counts allocation (not
     collection), so the delta over any number of steady-state points must
     be exactly zero. *)
  let rand = lcg 99 in
  let b, rhs = random_system rand 16 in
  match Sparse.symbolic b with
  | None -> Alcotest.fail "symbolic factorisation unexpectedly failed"
  | Some (pat, _) ->
      let coords = Sparse.pattern_coords pat in
      let dense = Sparse.to_dense b in
      let m = Array.length coords in
      let vre = Array.init m (fun e -> (dense.(fst coords.(e)).(snd coords.(e))).Complex.re)
      and vim = Array.init m (fun e -> (dense.(fst coords.(e)).(snd coords.(e))).Complex.im) in
      let rre = Array.map (fun (v : Complex.t) -> v.Complex.re) rhs
      and rim = Array.map (fun (v : Complex.t) -> v.Complex.im) rhs in
      let prog = Sparse.pattern_program pat in
      let ws = Kernel.workspace prog in
      (* The documented hot path: direct stores into the raw buffers (a
         cross-module setter call would box its float arguments). *)
      let slot = prog.Kernel.coo_slot in
      let wre = Kernel.matrix_re ws and wim = Kernel.matrix_im ws in
      let yre = Kernel.rhs_buf_re ws and yim = Kernel.rhs_buf_im ws in
      let point () =
        Kernel.begin_point ws;
        for e = 0 to m - 1 do
          let s = slot.(e) in
          wre.(s) <- vre.(e);
          wim.(s) <- vim.(e)
        done;
        for r = 0 to Array.length rre - 1 do
          yre.(r) <- rre.(r);
          yim.(r) <- rim.(r)
        done;
        if Kernel.run ws && not (Kernel.det_is_zero ws) then Kernel.solve_into ws
      in
      (* Warm up (and sanity-check the system solves at all). *)
      point ();
      Alcotest.(check bool) "warm-up point solves" false (Kernel.det_is_zero ws);
      let probe iters =
        let before = Gc.minor_words () in
        for _ = 1 to iters do
          point ()
        done;
        Gc.minor_words () -. before
      in
      Alcotest.(check (float 0.)) "1000 points allocate zero words" 0.
        (probe 1000);
      Alcotest.(check (float 0.)) "2000 points allocate zero words" 0.
        (probe 2000)

(* --- Nodal-level bit-identity on random circuits ------------------------- *)

let problem_of ~kernel seed nodes =
  let circuit = Random_net.circuit ~seed ~nodes () in
  Nodal.make ~reuse:true ~kernel circuit ~input:(Nodal.Vsrc_element "vin")
    ~output:(Nodal.Out_node (Random_net.output_node ~seed ~nodes))

let value_bits_equal (a : Nodal.value) (b : Nodal.value) =
  bits a.Nodal.den.Ec.c.Complex.re = bits b.Nodal.den.Ec.c.Complex.re
  && bits a.Nodal.den.Ec.c.Complex.im = bits b.Nodal.den.Ec.c.Complex.im
  && a.Nodal.den.Ec.e = b.Nodal.den.Ec.e
  && bits a.Nodal.num.Ec.c.Complex.re = bits b.Nodal.num.Ec.c.Complex.re
  && bits a.Nodal.num.Ec.c.Complex.im = bits b.Nodal.num.Ec.c.Complex.im
  && a.Nodal.num.Ec.e = b.Nodal.num.Ec.e
  && bits a.Nodal.h.Complex.re = bits b.Nodal.h.Complex.re
  && bits a.Nodal.h.Complex.im = bits b.Nodal.h.Complex.im
  && a.Nodal.singular = b.Nodal.singular

let prop_nodal_bit_identity =
  QCheck2.Test.make
    ~name:"kernel = boxed bitwise on random circuits (den, num, H)" ~count:20
    QCheck2.Gen.(pair (int_range 1 10_000) (int_range 3 14))
    (fun (seed, nodes) ->
      let pk = problem_of ~kernel:true seed nodes in
      let pb = problem_of ~kernel:false seed nodes in
      let f = 1. /. Nodal.mean_capacitance pk
      and g = 1. /. Nodal.mean_conductance pk in
      let k = Int.max 4 (Nodal.order_bound pk + 1) in
      List.for_all
        (fun j ->
          let s = Uc.point k j in
          value_bits_equal (Nodal.eval ~f ~g pk s) (Nodal.eval ~f ~g pb s))
        (List.init k Fun.id)
      (* A second scale pair exercises pattern relearning + pool reuse. *)
      && List.for_all
           (fun j ->
             let s = Uc.point k j in
             value_bits_equal
               (Nodal.eval ~f:(2. *. f) ~g pk s)
               (Nodal.eval ~f:(2. *. f) ~g pb s))
           (List.init ((k / 2) + 1) Fun.id))

let test_workspace_reuse_invariance () =
  (* The same pooled workspace serves many points and passes: replaying a
     point later — after the buffers held other data — must reproduce the
     first visit bit for bit. *)
  let p =
    Nodal.make ~reuse:true ~kernel:true Ua741.circuit
      ~input:(Nodal.V_diff (Ua741.input_p, Ua741.input_n))
      ~output:(Nodal.Out_node Ua741.output)
  in
  let f = 1. /. Nodal.mean_capacitance p
  and g = 1. /. Nodal.mean_conductance p in
  let k = Nodal.order_bound p + 1 in
  let first =
    Array.init k (fun j -> Nodal.eval ~f ~g p (Uc.point k j))
  in
  (* Interleave other work: another scale (fresh pattern + workspace), then
     revisit every original point. *)
  for j = 0 to (k / 2) + 1 do
    ignore (Nodal.eval ~f:(3. *. f) ~g:(2. *. g) p (Uc.point k j))
  done;
  Array.iteri
    (fun j v ->
      Alcotest.(check bool)
        (Printf.sprintf "point %d replays bit-identically" j)
        true
        (value_bits_equal v (Nodal.eval ~f ~g p (Uc.point k j))))
    first

(* --- fault-injection parity ---------------------------------------------- *)

let with_registry f = Fun.protect ~finally:Inject.disable f

let test_chaos_singular_parity () =
  with_registry (fun () ->
      (* The same armed plan must produce the same fire sequence, the same
         degraded evaluations and the same recovered values on both
         engines: Kernel.run consumes its hit at the same site as
         Sparse.refactor. *)
      let sweep ~kernel =
        Inject.enable ~seed:7 ();
        Inject.arm Inject.sparse_singular
          (Inject.Times { skip = 3; count = 4 });
        let p = problem_of ~kernel 4242 10 in
        let f = 1. /. Nodal.mean_capacitance p
        and g = 1. /. Nodal.mean_conductance p in
        let k = Int.max 4 (Nodal.order_bound p + 1) in
        let vs = Array.init k (fun j -> Nodal.eval ~f ~g p (Uc.point k j)) in
        let consumed = (Inject.hits Inject.sparse_singular, Inject.fired Inject.sparse_singular) in
        (vs, consumed)
      in
      let vk, ck = sweep ~kernel:true in
      let vb, cb = sweep ~kernel:false in
      Alcotest.(check (pair int int)) "hook consumption identical" cb ck;
      Alcotest.(check bool) "the plan actually fired" true (snd ck > 0);
      Array.iteri
        (fun j a ->
          Alcotest.(check bool)
            (Printf.sprintf "faulted point %d bit-identical" j)
            true (value_bits_equal a vb.(j)))
        vk)

let test_kernel_counters () =
  (* Successful kernel points count under both [kernel.points] and the
     shared [lu.refactor], so the established observability invariants
     survive the engine swap. *)
  let module Obs = Symref_obs.Metrics in
  let module Snapshot = Symref_obs.Snapshot in
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    (fun () ->
      let p = problem_of ~kernel:true 99 8 in
      let f = 1. /. Nodal.mean_capacitance p
      and g = 1. /. Nodal.mean_conductance p in
      let k = Int.max 4 (Nodal.order_bound p + 1) in
      for j = 0 to k - 1 do
        ignore (Nodal.eval ~f ~g p (Uc.point k j))
      done;
      let s = Snapshot.capture () in
      Alcotest.(check int) "every replayed point was kernel-served"
        s.Snapshot.lu_refactor s.Snapshot.kernel_points;
      Alcotest.(check bool) "kernel served points" true (s.Snapshot.kernel_points > 0);
      Alcotest.(check int) "no fallbacks on a healthy sweep" 0
        s.Snapshot.kernel_fallbacks;
      Alcotest.(check bool) "a workspace was pooled" true
        (s.Snapshot.kernel_workspaces >= 1))

let suite =
  [
    ( "kernel",
      [
        QCheck_alcotest.to_alcotest prop_frexp_exp;
        Alcotest.test_case "frexp_exp edge cases" `Quick test_frexp_exp_edges;
        Alcotest.test_case "sparse-level bit-identity" `Quick
          test_sparse_bit_identity;
        Alcotest.test_case "threshold bail parity" `Quick test_bail_parity;
        Alcotest.test_case "zero allocation per point" `Quick test_zero_alloc;
        QCheck_alcotest.to_alcotest prop_nodal_bit_identity;
        Alcotest.test_case "workspace reuse invariance" `Quick
          test_workspace_reuse_invariance;
        Alcotest.test_case "chaos: sparse.singular parity" `Quick
          test_chaos_singular_parity;
        Alcotest.test_case "kernel counters" `Quick test_kernel_counters;
      ] );
  ]
