(* Tests for dense and sparse complex LU. *)

module Dense = Symref_linalg.Dense
module Sparse = Symref_linalg.Sparse
module Ec = Symref_numeric.Extcomplex
module Ef = Symref_numeric.Extfloat
module Cx = Symref_numeric.Cx

let c re im = Cx.make re im
let r x = Cx.of_float x

let check_cx msg a b =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s vs %s" msg (Cx.to_string a) (Cx.to_string b))
    true
    (Cx.approx_equal ~rel:1e-9 ~abs:1e-9 a b)

let check_det msg expected f =
  let d = Ec.to_complex f in
  check_cx msg expected d

let dense_of_lists rows = Array.of_list (List.map Array.of_list rows)

let sparse_of_dense a =
  let n = Array.length a in
  let b = Sparse.create n in
  Array.iteri
    (fun i row ->
      Array.iteri (fun j v -> if v <> Complex.zero then Sparse.add b i j v) row)
    a;
  b

(* A deterministic pseudo-random generator (no wall-clock, reproducible). *)
let rand_state = ref 42

let next_float () =
  rand_state := ((!rand_state * 1103515245) + 12345) land 0x3FFFFFFF;
  (float_of_int !rand_state /. float_of_int 0x3FFFFFFF *. 4.) -. 2.

let random_matrix ?(density = 1.0) n =
  Array.init n (fun _ ->
      Array.init n (fun _ ->
          let keep = next_float () < (density *. 4.) -. 2. in
          if keep then c (next_float ()) (next_float ()) else Complex.zero))

let ensure_nonsingular a =
  (* Diagonal dominance guarantees a clean factorization. *)
  Array.iteri (fun i row -> row.(i) <- Complex.add row.(i) (r 10.)) a;
  a

let test_dense_2x2 () =
  let a = dense_of_lists [ [ r 1.; r 2. ]; [ r 3.; r 4. ] ] in
  check_det "det -2" (r (-2.)) (Dense.det (Dense.factor a));
  let x = Dense.solve_matrix a [| r 5.; r 11. |] in
  check_cx "x0" (r 1.) x.(0);
  check_cx "x1" (r 2.) x.(1)

let test_dense_complex_det () =
  (* det [[j, 1], [1, j]] = j^2 - 1 = -2 *)
  let a = dense_of_lists [ [ Cx.j; r 1. ]; [ r 1.; Cx.j ] ] in
  check_det "complex det" (r (-2.)) (Dense.det (Dense.factor a))

let test_dense_pivoting () =
  (* Zero on the diagonal forces a row swap. *)
  let a = dense_of_lists [ [ r 0.; r 1. ]; [ r 1.; r 0. ] ] in
  check_det "swap sign" (r (-1.)) (Dense.det (Dense.factor a));
  let x = Dense.solve (Dense.factor a) [| r 3.; r 7. |] in
  check_cx "x0" (r 7.) x.(0);
  check_cx "x1" (r 3.) x.(1)

let test_dense_singular () =
  let a = dense_of_lists [ [ r 1.; r 2. ]; [ r 2.; r 4. ] ] in
  let f = Dense.factor a in
  Alcotest.(check bool) "det zero" true (Ec.is_zero (Dense.det f));
  Alcotest.check_raises "solve raises" Dense.Singular (fun () ->
      ignore (Dense.solve f [| r 1.; r 1. |]))

let test_dense_extended_det () =
  (* Product of 400 diagonal entries 1e-3: det = 1e-1200, far below double
     range, must survive in extended form. *)
  let n = 400 in
  let a = Array.init n (fun i -> Array.init n (fun j -> if i = j then r 1e-3 else Complex.zero)) in
  let d = Dense.det (Dense.factor a) in
  Alcotest.(check (float 1e-6)) "log10 det" (-1200.) (Ef.log10_abs (Ec.norm d))

let test_sparse_matches_dense () =
  List.iter
    (fun n ->
      let a = ensure_nonsingular (random_matrix ~density:0.4 n) in
      let fd = Dense.factor a and fs = Sparse.factor (sparse_of_dense a) in
      let dd = Ec.to_complex (Dense.det fd) and ds = Ec.to_complex (Sparse.det fs) in
      Alcotest.(check bool)
        (Printf.sprintf "det match n=%d: %s vs %s" n (Cx.to_string dd) (Cx.to_string ds))
        true
        (Cx.approx_equal ~rel:1e-6 dd ds);
      let b = Array.init n (fun i -> c (next_float ()) (float_of_int i)) in
      let xd = Dense.solve fd b and xs = Sparse.solve fs b in
      Array.iteri
        (fun i v -> check_cx (Printf.sprintf "solve n=%d slot %d" n i) v xs.(i))
        xd)
    [ 1; 2; 3; 5; 8; 13; 21 ]

let test_sparse_residual () =
  let n = 30 in
  let a = ensure_nonsingular (random_matrix ~density:0.2 n) in
  let b = Array.init n (fun i -> c (next_float ()) (next_float () +. float_of_int i)) in
  let x = Sparse.solve (Sparse.factor (sparse_of_dense a)) b in
  let ax = Dense.mul_vec a x in
  Array.iteri (fun i v -> check_cx (Printf.sprintf "residual %d" i) b.(i) v) ax

let test_sparse_builder () =
  let b = Sparse.create 3 in
  Alcotest.(check int) "dim" 3 (Sparse.dimension b);
  Sparse.add b 0 0 (r 1.);
  Sparse.add b 0 0 (r 2.);
  Sparse.add b 2 1 Cx.j;
  Alcotest.(check int) "nnz" 2 (Sparse.nnz b);
  let d = Sparse.to_dense b in
  check_cx "accumulated stamp" (r 3.) d.(0).(0);
  check_cx "off diagonal" Cx.j d.(2).(1);
  Sparse.clear b;
  Alcotest.(check int) "cleared" 0 (Sparse.nnz b);
  Alcotest.check_raises "range check" (Invalid_argument "Sparse.add: index out of range")
    (fun () -> Sparse.add b 3 0 (r 1.))

let test_sparse_singular () =
  let b = Sparse.create 2 in
  Sparse.add b 0 0 (r 1.);
  Sparse.add b 0 1 (r 2.);
  Sparse.add b 1 0 (r 2.);
  Sparse.add b 1 1 (r 4.);
  let f = Sparse.factor b in
  Alcotest.(check bool) "det zero" true (Ec.is_zero (Sparse.det f));
  Alcotest.check_raises "solve raises" Sparse.Singular (fun () ->
      ignore (Sparse.solve f [| r 1.; r 1. |]))

let test_sparse_structurally_singular () =
  (* An all-zero row. *)
  let b = Sparse.create 3 in
  Sparse.add b 0 0 (r 1.);
  Sparse.add b 1 1 (r 1.);
  let f = Sparse.factor b in
  Alcotest.(check bool) "det zero" true (Ec.is_zero (Sparse.det f))

let test_sparse_permutation_det () =
  (* Pure permutation matrix: Markowitz will pick pivots in an arbitrary
     order; the determinant sign must still come out right.
     [[0,1,0],[0,0,1],[1,0,0]] is an even permutation: det = +1. *)
  let b = Sparse.create 3 in
  Sparse.add b 0 1 (r 1.);
  Sparse.add b 1 2 (r 1.);
  Sparse.add b 2 0 (r 1.);
  check_det "cyclic permutation det" (r 1.) (Sparse.det (Sparse.factor b));
  let b = Sparse.create 2 in
  Sparse.add b 0 1 (r 1.);
  Sparse.add b 1 0 (r 1.);
  check_det "transposition det" (r (-1.)) (Sparse.det (Sparse.factor b))

let test_sparse_fill_in_tridiagonal () =
  (* A tridiagonal matrix eliminated in natural order has zero fill-in;
     Markowitz must find such an order. *)
  let n = 20 in
  let b = Sparse.create n in
  for i = 0 to n - 1 do
    Sparse.add b i i (r 4.);
    if i > 0 then Sparse.add b i (i - 1) (r (-1.));
    if i < n - 1 then Sparse.add b i (i + 1) (r (-1.))
  done;
  let f = Sparse.factor b in
  Alcotest.(check int) "no fill-in" 0 (Sparse.fill_in f);
  Alcotest.(check bool) "det nonzero" false (Ec.is_zero (Sparse.det f))

let test_solve_transpose () =
  List.iter
    (fun n ->
      let a = ensure_nonsingular (random_matrix ~density:0.35 n) in
      let at = Array.init n (fun i -> Array.init n (fun j -> a.(j).(i))) in
      let b = Array.init n (fun i -> c (next_float ()) (float_of_int i -. 1.)) in
      let want = Dense.solve (Dense.factor at) b in
      let got = Sparse.solve_transpose (Sparse.factor (sparse_of_dense a)) b in
      Array.iteri
        (fun i v -> check_cx (Printf.sprintf "transpose n=%d slot %d" n i) v got.(i))
        want)
    [ 1; 2; 3; 5; 8; 13; 21 ]

let test_exact_cancellation_dropped () =
  (* Eliminating (0,0) updates row 1 by [a_1j -= (a_10/a_00) a_0j]; with
     a_00 = 5, a_10 = 5, a_02 = 2, a_12 = 2 the (1,2) entry cancels to
     exactly zero.  The workspace must drop it (not store a zero): the
     remaining submatrix is then structurally triangular, so Markowitz finds
     a zero-fill order and the integer determinant is exact. *)
  let b = Sparse.create 4 in
  List.iter
    (fun (i, j, v) -> Sparse.add b i j (r v))
    [
      (0, 0, 5.); (0, 2, 2.);
      (1, 0, 5.); (1, 1, 3.); (1, 2, 2.);
      (2, 1, 1.); (2, 2, 1.);
      (3, 1, 1.); (3, 3, 1.);
    ];
  let f = Sparse.factor b in
  Alcotest.(check int) "cancellation creates no fill" 0 (Sparse.fill_in f);
  check_det "integer det exact" (r 15.) (Sparse.det f);
  (* Cancellation wiping out a whole row: clean structural singularity. *)
  let b = Sparse.create 2 in
  List.iter (fun (i, j) -> Sparse.add b i j (r 1.)) [ (0, 0); (0, 1); (1, 0); (1, 1) ];
  Alcotest.(check bool) "rank-1 det zero" true (Ec.is_zero (Sparse.det (Sparse.factor b)))

let values_of_pattern pat a =
  Array.map (fun (i, j) -> a.(i).(j)) (Sparse.pattern_coords pat)

let test_symbolic_basics () =
  let a = ensure_nonsingular (random_matrix ~density:0.4 9) in
  let b = sparse_of_dense a in
  match Sparse.symbolic b with
  | None -> Alcotest.fail "nonsingular matrix must yield a pattern"
  | Some (pat, f0) ->
      Alcotest.(check int) "pattern dim" 9 (Sparse.pattern_dimension pat);
      Alcotest.(check int) "pattern nnz = builder nnz" (Sparse.nnz b)
        (Sparse.pattern_nnz pat);
      let slots, fill = Sparse.pattern_stats pat in
      Alcotest.(check bool) "slots = nnz + structural fill" true
        (slots = Sparse.pattern_nnz pat + fill);
      (* Replaying the analysed values must reproduce the analysed factor. *)
      (match Sparse.refactor pat (values_of_pattern pat a) with
      | None -> Alcotest.fail "refactor at the analysed values must succeed"
      | Some f ->
          check_cx "same det" (Ec.to_complex (Sparse.det f0))
            (Ec.to_complex (Sparse.det f)));
      ()

let test_refactor_threshold_fallback () =
  (* Diagonal 2x2: the pattern's pivots are the diagonal slots.  Reusing
     them on values where a pivot is exactly zero, or dominated by its row
     beyond the threshold-pivoting floor, must refuse (caller falls back to
     a fresh Markowitz factorisation) instead of dividing by ~zero. *)
  let b = Sparse.create 2 in
  Sparse.add b 0 0 (r 4.);
  Sparse.add b 0 1 (r 1.);
  Sparse.add b 1 1 (r 3.);
  match Sparse.symbolic b with
  | None -> Alcotest.fail "nonsingular matrix must yield a pattern"
  | Some (pat, _) ->
      let value_at want =
        Array.map (fun (i, j) -> List.assoc (i, j) want) (Sparse.pattern_coords pat)
      in
      let ok =
        Sparse.refactor pat (value_at [ ((0, 0), r 2.); ((0, 1), r 1.); ((1, 1), r 5.) ])
      in
      Alcotest.(check bool) "healthy values accepted" true (ok <> None);
      let zero_pivot =
        Sparse.refactor pat
          (value_at [ ((0, 0), Complex.zero); ((0, 1), r 1.); ((1, 1), r 5.) ])
      in
      Alcotest.(check bool) "zero pivot refused" true (zero_pivot = None);
      let below_floor =
        (* |a00| = 1e-3 of its row maximum: below the tau = 0.1 floor. *)
        Sparse.refactor pat
          (value_at [ ((0, 0), r 1e-3); ((0, 1), r 1.); ((1, 1), r 5.) ])
      in
      Alcotest.(check bool) "sub-threshold pivot refused" true (below_floor = None)

let prop_refactor_matches_factor =
  (* The symbolic/numeric split: learn the pattern once, then refactor with
     perturbed values; det, solve and solve_transpose must match a full
     from-scratch factorisation of the same values. *)
  let gen = QCheck2.Gen.(pair (int_range 2 12) (int_range 0 1000)) in
  QCheck2.Test.make ~name:"refactor = factor (det/solve/solve_transpose)"
    ~count:60 gen (fun (n, salt) ->
      rand_state := (salt * 7919) + 17;
      let a = ensure_nonsingular (random_matrix ~density:0.5 n) in
      match Sparse.symbolic (sparse_of_dense a) with
      | None -> false
      | Some (pat, _) ->
          (* Same structure, different values (diagonal dominance kept so the
             reused pivot order stays above the threshold floor). *)
          let a' =
            Array.map
              (Array.map (fun v ->
                   if v = Complex.zero then v
                   else Complex.mul v (c (1. +. (0.05 *. next_float ())) 0.)))
              a
          in
          let fs = Sparse.factor (sparse_of_dense a') in
          (match Sparse.refactor pat (values_of_pattern pat a') with
          | None ->
              (* The documented fallback: a reused pivot crossed the
                 threshold-pivoting floor (~1.5% of perturbed cases), and
                 the caller refactorises from scratch.  Nothing to compare. *)
              true
          | Some fr ->
              let ds = Ec.to_complex (Sparse.det fs)
              and dr = Ec.to_complex (Sparse.det fr) in
              let b = Array.init n (fun i -> c (next_float ()) (float_of_int i)) in
              let ok_vec xs xr =
                Array.for_all2 (Cx.approx_equal ~rel:1e-8 ~abs:1e-12) xs xr
              in
              Cx.approx_equal ~rel:1e-8 ds dr
              && ok_vec (Sparse.solve fs b) (Sparse.solve fr b)
              && ok_vec (Sparse.solve_transpose fs b) (Sparse.solve_transpose fr b)))

let prop_sparse_dense_agree =
  let gen = QCheck2.Gen.(int_range 1 12) in
  QCheck2.Test.make ~name:"sparse det = dense det" ~count:60 gen (fun n ->
      let a = ensure_nonsingular (random_matrix ~density:0.5 n) in
      let dd = Ec.to_complex (Dense.det (Dense.factor a)) in
      let ds = Ec.to_complex (Sparse.det (Sparse.factor (sparse_of_dense a))) in
      Cx.approx_equal ~rel:1e-6 dd ds)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_sparse_dense_agree; prop_refactor_matches_factor ]

let suite =
  [
    ( "linalg-dense",
      [
        Alcotest.test_case "2x2 solve/det" `Quick test_dense_2x2;
        Alcotest.test_case "complex det" `Quick test_dense_complex_det;
        Alcotest.test_case "pivoting" `Quick test_dense_pivoting;
        Alcotest.test_case "singular" `Quick test_dense_singular;
        Alcotest.test_case "extended-range det" `Quick test_dense_extended_det;
      ] );
    ( "linalg-sparse",
      [
        Alcotest.test_case "matches dense" `Quick test_sparse_matches_dense;
        Alcotest.test_case "residual" `Quick test_sparse_residual;
        Alcotest.test_case "builder" `Quick test_sparse_builder;
        Alcotest.test_case "singular" `Quick test_sparse_singular;
        Alcotest.test_case "structurally singular" `Quick test_sparse_structurally_singular;
        Alcotest.test_case "permutation det sign" `Quick test_sparse_permutation_det;
        Alcotest.test_case "tridiagonal fill-in" `Quick test_sparse_fill_in_tridiagonal;
        Alcotest.test_case "transpose solve" `Quick test_solve_transpose;
        Alcotest.test_case "exact cancellation dropped" `Quick
          test_exact_cancellation_dropped;
        Alcotest.test_case "symbolic pattern basics" `Quick test_symbolic_basics;
        Alcotest.test_case "refactor threshold fallback" `Quick
          test_refactor_threshold_fallback;
      ]
      @ props );
  ]
