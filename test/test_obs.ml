(* Symref_obs: counters, tracing, snapshots, and the domain pool.

   The counter assertions pin the pipeline's cost model on the paper's
   uA741 workload: 87 evaluator calls backed by 63 factorisations.  With
   batched prefetching (the default) every pass's points are factorised
   up front — 63 memo misses recorded by the prefetch — so all 87 eval
   calls are then served from the table. *)

module Metrics = Symref_obs.Metrics
module Trace = Symref_obs.Trace
module Snapshot = Symref_obs.Snapshot
module Json = Symref_obs.Json
module Nodal = Symref_mna.Nodal
module Ua741 = Symref_circuit.Ua741
module Reference = Symref_core.Reference
module Evaluator = Symref_core.Evaluator
module Interp = Symref_core.Interp
module Scaling = Symref_core.Scaling
module Domain_pool = Symref_core.Domain_pool
module Ef = Symref_numeric.Extfloat

let generate_ua741 () =
  Reference.generate Ua741.circuit
    ~input:(Nodal.V_diff (Ua741.input_p, Ua741.input_n))
    ~output:(Nodal.Out_node Ua741.output)

let coeffs_of (r : Reference.t) =
  ( r.Reference.num.Symref_core.Adaptive.coeffs,
    r.Reference.den.Symref_core.Adaptive.coeffs )

(* Disabled counters stay at zero, and enabling them does not perturb the
   numbers: coefficients are bit-identical either way. *)
let test_disabled_zero_and_transparent () =
  Metrics.disable ();
  Metrics.reset ();
  let r_off = generate_ua741 () in
  let s_off = Snapshot.capture () in
  Alcotest.(check bool) "all counters zero while disabled" true
    (Snapshot.is_zero s_off);
  Metrics.enable ();
  Metrics.reset ();
  let r_on = generate_ua741 () in
  Metrics.disable ();
  let num_off, den_off = coeffs_of r_off and num_on, den_on = coeffs_of r_on in
  Alcotest.(check bool) "numerator bit-identical" true (num_off = num_on);
  Alcotest.(check bool) "denominator bit-identical" true (den_off = den_on)

(* The uA741 pipeline run: counter values and cross-counter invariants. *)
let test_ua741_counters () =
  Metrics.enable ();
  Metrics.reset ();
  let r = generate_ua741 () in
  Metrics.disable ();
  let s = Snapshot.capture () in
  Alcotest.(check int) "evaluator calls" 87 s.Snapshot.evaluator_calls;
  Alcotest.(check int) "factorisations (memo misses)" 63 s.Snapshot.memo_misses;
  (* Batched prefetch seeds the memo before the per-point loop, so every
     eval call hits (per-point mode would record 24 hits + 63 miss-calls —
     same 63 factorisations, same values, different split). *)
  Alcotest.(check int) "memo hits = calls" s.Snapshot.evaluator_calls
    s.Snapshot.memo_hits;
  Alcotest.(check int) "replays + fallbacks = memo misses" s.Snapshot.memo_misses
    (s.Snapshot.lu_refactor + s.Snapshot.refactor_fallbacks);
  (* All clean-run points are served by the batched engine: nothing ejects,
     nothing leaks to the per-point kernel counter. *)
  Alcotest.(check int) "batched points = replays" s.Snapshot.lu_refactor
    s.Snapshot.kernel_batch_points;
  Alcotest.(check int) "no per-point kernel points" 0 s.Snapshot.kernel_points;
  Alcotest.(check int) "no batch ejects" 0 s.Snapshot.kernel_batch_ejects;
  Alcotest.(check int) "no kernel fallbacks" 0 s.Snapshot.kernel_fallbacks;
  Alcotest.(check int) "factorizations = refactor + scratch"
    (Snapshot.factorizations s)
    (s.Snapshot.lu_refactor + s.Snapshot.lu_factor);
  Alcotest.(check int) "calls agree with Reference.total_evaluations"
    (Reference.total_evaluations r)
    s.Snapshot.evaluator_calls;
  Alcotest.(check bool) "adaptive passes ran" true (s.Snapshot.adaptive_passes > 0);
  Alcotest.(check int) "histogram covers every batch" s.Snapshot.adaptive_passes
    (List.fold_left (fun acc (_, n) -> acc + n) 0 s.Snapshot.points_per_pass)

(* The trace file is valid JSON whose events are balanced: complete "X"
   events carrying a duration (B/E pairs would also be acceptable, but the
   pipeline only emits X). *)
let test_trace_file () =
  let file = Filename.temp_file "symref_trace" ".json" in
  Trace.start ~file;
  ignore (generate_ua741 ());
  let buffered = Trace.event_count () in
  Trace.finish ();
  Alcotest.(check bool) "events were buffered" true (buffered > 0);
  let doc = Json.parse_file file in
  Sys.remove file;
  let events =
    match Json.member "traceEvents" doc with
    | Some e -> Json.to_list e
    | None -> Alcotest.fail "missing traceEvents"
  in
  Alcotest.(check int) "file holds every buffered event" buffered
    (List.length events);
  let depth = ref 0 in
  List.iter
    (fun ev ->
      let ph = match Json.member "ph" ev with
        | Some p -> Json.to_str p
        | None -> Alcotest.fail "event without ph"
      in
      (match ph with
      | "B" -> incr depth
      | "E" ->
          decr depth;
          if !depth < 0 then Alcotest.fail "E without matching B"
      | "X" ->
          if Json.member "dur" ev = None then
            Alcotest.fail "complete event without dur"
      | "i" | "I" -> ()
      | p -> Alcotest.fail ("unexpected phase " ^ p));
      match Json.member "name" ev with
      | Some n -> ignore (Json.to_str n)
      | None -> Alcotest.fail "event without name")
    events;
  Alcotest.(check int) "B/E balanced" 0 !depth;
  let names =
    List.filter_map (fun ev -> Option.map Json.to_str (Json.member "name" ev)) events
  in
  let has n = List.mem n names in
  Alcotest.(check bool) "has adaptive.pass spans" true (has "adaptive.pass");
  Alcotest.(check bool) "has interp.batch spans" true (has "interp.batch");
  Alcotest.(check bool) "has factorisation spans" true
    (has "lu.refactor" || has "lu.factor" || has "lu.symbolic")

let test_snapshot_roundtrip () =
  Metrics.enable ();
  Metrics.reset ();
  ignore (generate_ua741 ());
  Metrics.disable ();
  let s = Snapshot.capture () in
  Metrics.reset ();
  Alcotest.(check bool) "non-trivial snapshot" false (Snapshot.is_zero s);
  let s' = Snapshot.of_string (Snapshot.to_string s) in
  Alcotest.(check bool) "of_string (to_string s) = s" true (s = s');
  let z = Snapshot.of_string (Snapshot.to_string Snapshot.zero) in
  Alcotest.(check bool) "zero round-trips" true (z = Snapshot.zero)

(* The pooled fan-out returns bit-identical interpolation results and
   survives a shutdown/restart cycle. *)
let test_domain_pool () =
  let p =
    Nodal.make Ua741.circuit
      ~input:(Nodal.V_diff (Ua741.input_p, Ua741.input_n))
      ~output:(Nodal.Out_node Ua741.output)
  in
  let ev = Evaluator.of_nodal p ~num:false in
  let scale = Scaling.initial ev in
  let k = Nodal.order_bound p + 1 in
  let seq = Interp.run ev ~scale ~k in
  List.iter
    (fun d ->
      let r = Interp.run ~domains:d ev ~scale ~k in
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d bit-identical" d)
        true
        (r.Interp.normalized = seq.Interp.normalized))
    [ 2; 4; 8 ];
  Domain_pool.shutdown ();
  Alcotest.(check int) "pool empty after shutdown" 0 (Domain_pool.size ());
  let r = Interp.run ~domains:4 ev ~scale ~k in
  Alcotest.(check bool) "pool restarts after shutdown" true
    (r.Interp.normalized = seq.Interp.normalized);
  (* Exceptions from pooled jobs surface at the call site. *)
  match
    Domain_pool.parallel
      [| (fun () -> ()); (fun () -> failwith "boom"); (fun () -> ()) |]
  with
  | () -> Alcotest.fail "expected the job's exception"
  | exception Failure m -> Alcotest.(check string) "job exception" "boom" m

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "disabled: zeros, identical results" `Quick
          test_disabled_zero_and_transparent;
        Alcotest.test_case "ua741 counters 87/63" `Quick test_ua741_counters;
        Alcotest.test_case "trace file is valid and balanced" `Quick
          test_trace_file;
        Alcotest.test_case "snapshot JSON round-trip" `Quick
          test_snapshot_roundtrip;
        Alcotest.test_case "domain pool" `Quick test_domain_pool;
      ] );
  ]
