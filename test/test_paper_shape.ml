(* Regression tests that pin the paper-shape claims of EXPERIMENTS.md:
   which method fails where, how the adaptive bands progress on the uA741,
   what the reduction saves, and what simultaneous scaling avoids.  These are
   the repository's contract with the paper. *)

module Nodal = Symref_mna.Nodal
module Ac = Symref_mna.Ac
module N = Symref_circuit.Netlist
module Ota = Symref_circuit.Ota
module Ua741 = Symref_circuit.Ua741
module Evaluator = Symref_core.Evaluator
module Naive = Symref_core.Naive
module Fixed_scale = Symref_core.Fixed_scale
module Adaptive = Symref_core.Adaptive
module Reference = Symref_core.Reference
module Band = Symref_core.Band
module Scaling = Symref_core.Scaling
module Ef = Symref_numeric.Extfloat

let ota_problem () =
  Nodal.make Ota.circuit
    ~input:(Nodal.V_diff (Ota.input_p, Ota.input_n))
    ~output:(Nodal.Out_node Ota.output)

let ua741_den () =
  let r =
    Reference.generate Ua741.circuit
      ~input:(Nodal.V_diff (Ua741.input_p, Ua741.input_n))
      ~output:(Nodal.Out_node Ua741.output)
  in
  r.Reference.den

(* T1a: the naive method validates only the lowest orders and produces
   complex garbage above them.  The paper's Table 1a assumes one independent
   LU (with its own pivot search) per point, so pin [~reuse:false]: with the
   shared-pattern pipeline the per-point round-off is correlated across the
   circle and the garbage loses its imaginary signature (the method still
   fails — the band stays at s^0 — it just fails differently). *)
let test_t1a_shape () =
  let p =
    Nodal.make ~reuse:false Ota.circuit
      ~input:(Nodal.V_diff (Ota.input_p, Ota.input_n))
      ~output:(Nodal.Out_node Ota.output)
  in
  let den = Naive.run (Evaluator.of_nodal p ~num:false) in
  (match den.Naive.band with
  | None -> Alcotest.fail "expected some valid coefficients"
  | Some b ->
      Alcotest.(check int) "only s^0 valid" 0 b.Band.hi);
  Alcotest.(check bool) "imaginary garbage present" true
    (Naive.garbage_fraction den > 0.15)

(* T1b: the fixed scale rescues this low-order circuit completely. *)
let test_t1b_shape () =
  let p = ota_problem () in
  let r = Fixed_scale.run ~f:1e9 (Evaluator.of_nodal p ~num:false) in
  match r.Fixed_scale.band with
  | Some b -> Alcotest.(check int) "full band" 4 (b.Band.hi - b.Band.lo)
  | None -> Alcotest.fail "expected a band"

(* T2a-T3: three productive bands in ascending-then-low order, covering
   everything, ~45th order, < 50 LU evaluations. *)
let test_t2_t3_shape () =
  let den = ua741_den () in
  Alcotest.(check bool) "order ~48" true
    (den.Adaptive.effective_order >= 40 && den.Adaptive.effective_order <= 50);
  let productive =
    List.filter_map
      (fun p -> if p.Adaptive.fresh > 0 then p.Adaptive.band else None)
      den.Adaptive.reports
  in
  Alcotest.(check int) "three productive bands" 3 (List.length productive);
  (match productive with
  | [ b1; b2; b3 ] ->
      (* First band in the middle, second above it, third at the bottom —
         the paper's trajectory (it starts at p0 only because its mean
         heuristic lands lower; the shape is bands that tile the range). *)
      Alcotest.(check bool) "b2 above b1" true (b2.Band.lo > b1.Band.hi);
      Alcotest.(check bool) "b3 below b1" true (b3.Band.hi < b1.Band.lo);
      Alcotest.(check int) "tiling starts at 0" 0 b3.Band.lo;
      Alcotest.(check bool) "bands contiguous" true
        (b2.Band.lo = b1.Band.hi + 1 && b3.Band.hi = b1.Band.lo - 1)
  | _ -> Alcotest.fail "expected exactly three bands");
  Alcotest.(check bool)
    (Printf.sprintf "conjugate symmetry keeps LU count low (%d)" den.Adaptive.evaluations)
    true
    (den.Adaptive.evaluations < 60)

(* CPU: with reduction the per-pass point count is strictly decreasing over
   the productive passes; without it, constant. *)
let test_cpu_shape () =
  let problem () =
    Nodal.make Ua741.circuit
      ~input:(Nodal.V_diff (Ua741.input_p, Ua741.input_n))
      ~output:(Nodal.Out_node Ua741.output)
  in
  let run reduce =
    let config = { Adaptive.default_config with Adaptive.reduce } in
    Adaptive.run ~config (Evaluator.of_nodal (problem ()) ~num:false)
  in
  let reduced = run true and full = run false in
  let points r =
    List.filter_map
      (fun p -> if p.Adaptive.fresh > 0 then Some p.Adaptive.points else None)
      r.Adaptive.reports
  in
  (match points reduced with
  | [ a; b; c ] ->
      Alcotest.(check bool)
        (Printf.sprintf "decreasing points %d > %d > %d" a b c)
        true
        (a > b && b > c)
  | l -> Alcotest.fail (Printf.sprintf "expected 3 productive passes, got %d" (List.length l)));
  List.iter
    (fun p -> Alcotest.(check int) "constant points without reduction" 47 p)
    (points full);
  Alcotest.(check bool)
    (Printf.sprintf "reduction saves LU work (%d vs %d)" reduced.Adaptive.evaluations
       full.Adaptive.evaluations)
    true
    (full.Adaptive.evaluations > reduced.Adaptive.evaluations * 2);
  (* Both deliver the same coefficients. *)
  Array.iteri
    (fun i c ->
      if reduced.Adaptive.established.(i) && full.Adaptive.established.(i) then
        Alcotest.(check bool)
          (Printf.sprintf "coeff %d agrees" i)
          true
          (Ef.approx_equal ~rel:1e-5 c full.Adaptive.coeffs.(i)))
    reduced.Adaptive.coeffs

(* X1: frequency-only scaling needs far larger factors. *)
let test_x1_shape () =
  let run policy =
    let config = { Adaptive.default_config with Adaptive.scaling_policy = policy } in
    let r =
      Adaptive.run ~config
        (Evaluator.of_nodal
           (Nodal.make Ua741.circuit
              ~input:(Nodal.V_diff (Ua741.input_p, Ua741.input_n))
              ~output:(Nodal.Out_node Ua741.output))
           ~num:false)
    in
    List.fold_left
      (fun acc p -> Float.max acc p.Adaptive.scale.Scaling.f)
      0. r.Adaptive.reports
  in
  let split = run `Split and fonly = run `Frequency_only in
  Alcotest.(check bool)
    (Printf.sprintf "frequency-only (%.2g) needs >10x the factors of split (%.2g)"
       fonly split)
    true
    (fonly > split *. 10.)

(* F2: the reconstructed Bode matches the independent simulator. *)
let test_f2_shape () =
  let r =
    Reference.generate Ua741.circuit
      ~input:(Nodal.V_diff (Ua741.input_p, Ua741.input_n))
      ~output:(Nodal.Out_node Ua741.output)
  in
  let freqs = Symref_numeric.Grid.decades ~start:1. ~stop:1e8 ~per_decade:3 in
  let with_sources =
    N.extend Ua741.circuit (fun b ->
        N.Builder.vsrc b "_p" ~p:Ua741.input_p ~m:"0" 0.5;
        N.Builder.vsrc b "_m" ~p:Ua741.input_n ~m:"0" (-0.5))
  in
  let sim = Ac.bode with_sources ~out_p:Ua741.output freqs in
  let dmag, dph = Reference.bode_vs_simulator r sim in
  Alcotest.(check bool) (Printf.sprintf "dmag %.2e" dmag) true (dmag < 1e-3);
  Alcotest.(check bool) (Printf.sprintf "dph %.2e" dph) true (dph < 1e-2)

let suite =
  [
    ( "paper-shape",
      [
        Alcotest.test_case "T1a: naive failure" `Quick test_t1a_shape;
        Alcotest.test_case "T1b: fixed-scale rescue" `Quick test_t1b_shape;
        Alcotest.test_case "T2a-T3: band progression" `Quick test_t2_t3_shape;
        Alcotest.test_case "CPU: reduction shape" `Quick test_cpu_shape;
        Alcotest.test_case "X1: scaling policy" `Quick test_x1_shape;
        Alcotest.test_case "F2: bode agreement" `Quick test_f2_shape;
      ] );
  ]
