(* Randomised integration properties: on seed-generated nodal circuits the
   adaptive references must agree with direct solves, be invariant to the
   engine options, and respect the structural bounds. *)

module Random_net = Symref_circuit.Random_net
module N = Symref_circuit.Netlist
module Nodal = Symref_mna.Nodal
module Ac = Symref_mna.Ac
module Reference = Symref_core.Reference
module Adaptive = Symref_core.Adaptive
module Epoly = Symref_poly.Epoly
module Ef = Symref_numeric.Extfloat
module Cx = Symref_numeric.Cx

let problem_of seed nodes =
  let circuit = Random_net.circuit ~seed ~nodes () in
  let output = Nodal.Out_node (Random_net.output_node ~seed ~nodes) in
  (circuit, Nodal.Vsrc_element "vin", output)

let test_generator_properties () =
  List.iter
    (fun seed ->
      let c = Random_net.circuit ~seed ~nodes:12 () in
      Alcotest.(check bool) (Printf.sprintf "seed %d connected" seed) true
        (N.is_connected c);
      Alcotest.(check bool) (Printf.sprintf "seed %d caps" seed) true
        (N.capacitor_count c >= 12);
      (* Deterministic: same seed, same circuit. *)
      let c' = Random_net.circuit ~seed ~nodes:12 () in
      Alcotest.(check int)
        (Printf.sprintf "seed %d reproducible" seed)
        (N.element_count c) (N.element_count c'))
    [ 1; 2; 42; 1000 ]

let prop_reference_matches_direct =
  QCheck2.Test.make ~name:"reference H = direct H on random circuits" ~count:25
    QCheck2.Gen.(pair (int_range 1 10_000) (int_range 3 14))
    (fun (seed, nodes) ->
      let circuit, input, output = problem_of seed nodes in
      let r = Reference.generate circuit ~input ~output in
      let problem = Nodal.make circuit ~input ~output in
      List.for_all
        (fun w ->
          let direct = (Nodal.eval problem (Cx.jomega w)).Nodal.h in
          let recon = Reference.eval r (Cx.jomega w) in
          Cx.approx_equal ~rel:1e-4 ~abs:1e-12 direct recon)
        [ 0.; 1e4; 1e6; 1e8; 1e10 ])

let prop_reduce_invariance =
  QCheck2.Test.make ~name:"reduction does not change references" ~count:12
    QCheck2.Gen.(pair (int_range 1 10_000) (int_range 3 10))
    (fun (seed, nodes) ->
      let circuit, input, output = problem_of seed nodes in
      let with_reduce = Reference.generate circuit ~input ~output in
      let config = { Adaptive.default_config with Adaptive.reduce = false } in
      let without = Reference.generate ~config circuit ~input ~output in
      Epoly.approx_equal ~rel:1e-4
        (Reference.denominator with_reduce)
        (Reference.denominator without))

let prop_conj_symmetry_invariance =
  QCheck2.Test.make ~name:"conjugate symmetry does not change references" ~count:12
    QCheck2.Gen.(pair (int_range 1 10_000) (int_range 3 10))
    (fun (seed, nodes) ->
      let circuit, input, output = problem_of seed nodes in
      let a = Reference.generate circuit ~input ~output in
      let config = { Adaptive.default_config with Adaptive.conj_symmetry = false } in
      let b = Reference.generate ~config circuit ~input ~output in
      Epoly.approx_equal ~rel:1e-6
        (Reference.denominator a)
        (Reference.denominator b)
      && Epoly.approx_equal ~rel:1e-6 (Reference.numerator a) (Reference.numerator b))

let prop_pattern_reuse_invariance =
  (* The symbolic/numeric factorisation split against from-scratch Markowitz
     per point, on random nodal circuits: H(s) agrees to LU round-off at
     frequencies spanning the audio-to-GHz range, and the full adaptive
     references agree within the certified precision. *)
  QCheck2.Test.make ~name:"pattern reuse = fresh factorisation on random circuits"
    ~count:15
    QCheck2.Gen.(pair (int_range 1 10_000) (int_range 3 12))
    (fun (seed, nodes) ->
      let circuit, input, output = problem_of seed nodes in
      let fresh = Nodal.make ~reuse:false circuit ~input ~output in
      let reused = Nodal.make ~reuse:true circuit ~input ~output in
      let points_agree =
        List.for_all
          (fun w ->
            let a = Nodal.eval fresh (Cx.jomega w)
            and b = Nodal.eval reused (Cx.jomega w) in
            a.Nodal.singular = b.Nodal.singular
            && (a.Nodal.singular
               || Cx.approx_equal ~rel:1e-6 ~abs:1e-12 a.Nodal.h b.Nodal.h))
          [ 0.; 1e3; 1e6; 1e9 ]
      in
      let ra = Reference.generate ~reuse:false circuit ~input ~output in
      let rb = Reference.generate ~reuse:true circuit ~input ~output in
      points_agree
      && Epoly.approx_equal ~rel:1e-4 (Reference.denominator ra)
           (Reference.denominator rb)
      && Epoly.approx_equal ~rel:1e-4 (Reference.numerator ra)
           (Reference.numerator rb))

let prop_structural_bounds =
  QCheck2.Test.make ~name:"effective order within structural bounds" ~count:20
    QCheck2.Gen.(pair (int_range 1 10_000) (int_range 3 14))
    (fun (seed, nodes) ->
      let circuit, input, output = problem_of seed nodes in
      let r = Reference.generate circuit ~input ~output in
      let problem = Nodal.make circuit ~input ~output in
      let bound = Nodal.order_bound problem in
      r.Reference.den.Adaptive.effective_order <= bound
      && r.Reference.num.Adaptive.effective_order <= bound
      && r.Reference.den.Adaptive.converged
      && r.Reference.num.Adaptive.converged
      && r.Reference.den.Adaptive.established.(0))

let prop_ac_agrees =
  QCheck2.Test.make ~name:"AC simulator = nodal evaluator on random circuits"
    ~count:20
    QCheck2.Gen.(pair (int_range 1 10_000) (int_range 3 14))
    (fun (seed, nodes) ->
      let circuit, input, output = problem_of seed nodes in
      let problem = Nodal.make circuit ~input ~output in
      let out_p = match output with Nodal.Out_node n -> n | _ -> assert false in
      let freqs = [| 1e3; 1e7 |] in
      let ac = Ac.transfer circuit ~out_p freqs in
      ignore input;
      Array.for_all2
        (fun h f ->
          let v = Nodal.eval problem (Cx.jomega (2. *. Float.pi *. f)) in
          Cx.approx_equal ~rel:1e-6 ~abs:1e-15 h v.Nodal.h)
        ac freqs)

let suite =
  [
    ( "random-net",
      [
        Alcotest.test_case "generator properties" `Quick test_generator_properties;
        QCheck_alcotest.to_alcotest prop_reference_matches_direct;
        QCheck_alcotest.to_alcotest prop_reduce_invariance;
        QCheck_alcotest.to_alcotest prop_conj_symmetry_invariance;
        QCheck_alcotest.to_alcotest prop_pattern_reuse_invariance;
        QCheck_alcotest.to_alcotest prop_structural_bounds;
        QCheck_alcotest.to_alcotest prop_ac_agrees;
      ] );
  ]
