(* The serve subsystem: cache, scheduler, service, batch, and an
   end-to-end daemon round trip over a real Unix domain socket. *)

module Serve = Symref_serve
module Protocol = Serve.Protocol
module Cache = Serve.Cache
module Scheduler = Serve.Scheduler
module Service = Serve.Service
module Batch = Serve.Batch
module Json = Symref_obs.Json

let netlist name = Filename.concat "../examples/netlists" name
let read_file f = In_channel.with_open_bin f In_channel.input_all

let temp_dir prefix = Filename.temp_dir prefix ""

let rm_rf dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

(* Recognise the "file:LINE: message" one-line diagnostic convention. *)
let has_line_colon m =
  let n = String.length m in
  let rec scan i =
    if i >= n then false
    else if m.[i] = ':' then begin
      let j = ref (i + 1) in
      while !j < n && m.[!j] >= '0' && m.[!j] <= '9' do
        incr j
      done;
      if !j > i + 1 && !j < n && m.[!j] = ':' then true else scan (i + 1)
    end
    else scan (i + 1)
  in
  scan 0

(* --- cache --- *)

let test_cache_lru () =
  (* Budget sized for exactly two 100-byte payloads with 2-byte keys. *)
  let c = Cache.create ~max_bytes:204 () in
  let p = String.make 100 'x' in
  Cache.add c ~key:"k1" p;
  Cache.add c ~key:"k2" p;
  Alcotest.(check int) "two resident" 2 (Cache.entries c);
  (* Touch k1 so k2 becomes least recently used, then overflow. *)
  Alcotest.(check (option string)) "k1 hit" (Some p) (Cache.find c ~key:"k1");
  Cache.add c ~key:"k3" p;
  Alcotest.(check (option string)) "k2 evicted" None (Cache.find c ~key:"k2");
  Alcotest.(check (option string)) "k1 kept" (Some p) (Cache.find c ~key:"k1");
  Alcotest.(check (option string)) "k3 kept" (Some p) (Cache.find c ~key:"k3");
  Alcotest.(check int) "one eviction" 1 (Cache.evictions c);
  Alcotest.(check int) "hits counted" 3 (Cache.hits c);
  Alcotest.(check int) "misses counted" 1 (Cache.misses c)

let test_cache_oversize_and_replace () =
  let c = Cache.create ~max_bytes:50 () in
  Cache.add c ~key:"big" (String.make 100 'x');
  Alcotest.(check int) "oversize payload not cached" 0 (Cache.entries c);
  Cache.add c ~key:"k" "one";
  Cache.add c ~key:"k" "two";
  Alcotest.(check int) "replace keeps one entry" 1 (Cache.entries c);
  Alcotest.(check (option string)) "replaced value" (Some "two")
    (Cache.find c ~key:"k");
  Cache.clear c;
  Alcotest.(check int) "clear empties" 0 (Cache.entries c);
  Alcotest.(check int) "clear resets bytes" 0 (Cache.bytes c)

(* --- scheduler --- *)

let test_scheduler_backpressure () =
  let s = Scheduler.create ~capacity:2 () in
  let gate = Mutex.create () in
  let open_gate = Condition.create () in
  let released = ref false in
  let blocked () =
    Mutex.lock gate;
    while not !released do
      Condition.wait open_gate gate
    done;
    Mutex.unlock gate;
    42
  in
  let t1 = Scheduler.submit s blocked in
  let t2 = Scheduler.submit s blocked in
  Alcotest.(check bool) "two admitted" true (t1 <> None && t2 <> None);
  Alcotest.(check bool) "third refused (queue full)" true
    (Scheduler.submit s blocked = None);
  Mutex.lock gate;
  released := true;
  Condition.broadcast open_gate;
  Mutex.unlock gate;
  (match t1 with
  | Some t ->
      Alcotest.(check bool) "job result" true (Scheduler.await t = Ok 42)
  | None -> ());
  Scheduler.drain s;
  Alcotest.(check int) "drained" 0 (Scheduler.pending s);
  Alcotest.(check bool) "slot free again" true
    (Scheduler.submit s (fun () -> 7) <> None);
  Scheduler.shutdown s;
  Alcotest.(check bool) "stopped scheduler refuses" true
    (Scheduler.submit s (fun () -> 7) = None)

let test_scheduler_exception_isolation () =
  let s = Scheduler.create ~capacity:4 () in
  let t = Scheduler.submit s (fun () -> failwith "boom") in
  (match t with
  | Some t -> (
      match Scheduler.await t with
      | Error (Failure m) -> Alcotest.(check string) "exn carried" "boom" m
      | _ -> Alcotest.fail "expected Error (Failure boom)")
  | None -> Alcotest.fail "submission refused");
  (* The worker survives the exception. *)
  match Scheduler.submit s (fun () -> 1 + 1) with
  | Some t -> Alcotest.(check bool) "worker alive" true (Scheduler.await t = Ok 2)
  | None -> Alcotest.fail "submission refused"

(* --- service --- *)

let ua741_text () = read_file (netlist "ua741.cir")

let reference_job ?id ?timeout_ms text =
  {
    Protocol.default_job with
    Protocol.id;
    netlist = `Text text;
    timeout_ms;
  }

let test_service_cache_bit_identity () =
  let s = Service.create () in
  let job = reference_job ~id:"a" (ua741_text ()) in
  let r1 = Service.run_job s job in
  let hits_before = Cache.hits (Service.cache s) in
  let r2 = Service.run_job s { job with Protocol.id = Some "b" } in
  Alcotest.(check bool) "first not cached" false r1.Protocol.cached;
  Alcotest.(check bool) "second cached" true r2.Protocol.cached;
  Alcotest.(check int) "hit counter incremented" (hits_before + 1)
    (Cache.hits (Service.cache s));
  Alcotest.(check string) "payload bit-identical"
    (Json.to_string r1.Protocol.body)
    (Json.to_string r2.Protocol.body);
  Service.shutdown s

let test_service_formatting_invariance () =
  (* The cache key hashes the canonicalised netlist: formatting, case and
     comment differences must hit the same entry. *)
  let s = Service.create () in
  let text = "rc\nr1 in out 1k\nc1 out 0 1u\nv1 in 0 ac 1\n.end\n" in
  let reformatted =
    "rc\n* a comment\nR1  IN  OUT  1K\n\nc1 out 0 1u\nV1 in 0 AC 1\n"
  in
  let r1 = Service.run_job s (reference_job text) in
  let r2 = Service.run_job s (reference_job reformatted) in
  Alcotest.(check bool) "canonicalised variant cached" true r2.Protocol.cached;
  Alcotest.(check string) "same payload"
    (Json.to_string r1.Protocol.body)
    (Json.to_string r2.Protocol.body);
  Service.shutdown s

let test_service_timeout_and_isolation () =
  let s = Service.create () in
  (* timeout_ms = 0: the deadline is already expired at admission, so the
     cooperative check fires deterministically on the first evaluation. *)
  let t = Service.submit s (reference_job ~id:"late" ~timeout_ms:0 (ua741_text ())) in
  let ok = Service.submit s (reference_job ~id:"fine" (ua741_text ())) in
  (match (t, ok) with
  | `Ticket late, `Ticket fine ->
      (match Scheduler.await late with
      | Ok r ->
          Alcotest.(check bool) "timeout status" true
            (r.Protocol.status = Protocol.Timeout);
          Alcotest.(check (option string)) "timeout kind" (Some "timeout")
            (Protocol.error_kind r)
      | Error _ -> Alcotest.fail "timeout must be a structured reply");
      (match Scheduler.await fine with
      | Ok r ->
          Alcotest.(check bool) "concurrent job unaffected" true
            (r.Protocol.status = Protocol.Ok)
      | Error _ -> Alcotest.fail "concurrent job must succeed")
  | _ -> Alcotest.fail "submissions refused");
  Service.shutdown s

let test_service_error_isolation () =
  let s = Service.create () in
  let broken = "broken\nr1 in out\n.end\n" in
  let r = Service.run_job s (reference_job broken) in
  Alcotest.(check bool) "parse failure is an error reply" true
    (r.Protocol.status = Protocol.Error);
  Alcotest.(check (option string)) "kind" (Some "parse") (Protocol.error_kind r);
  (match Protocol.error_message r with
  | Some m ->
      Alcotest.(check bool) "file:line one-liner" true
        (String.length m > 0
        && has_line_colon m)
  | None -> Alcotest.fail "parse error carries a message");
  (* The service survives and still computes. *)
  let ok = Service.run_job s (reference_job (ua741_text ())) in
  Alcotest.(check bool) "service alive after failure" true
    (ok.Protocol.status = Protocol.Ok);
  Service.shutdown s

(* --- batch --- *)

let test_batch_examples_vs_single_shot () =
  let report = Batch.run "../examples/netlists" in
  Alcotest.(check bool) "all example files succeed" true
    (report.Batch.failed = 0 && report.Batch.files >= 5);
  (* Each batch payload must be bit-identical to a fresh single-shot run of
     the same job. *)
  let s = Service.create () in
  List.iter
    (fun (o : Batch.outcome) ->
      let single =
        Service.run_job s
          {
            Protocol.default_job with
            Protocol.netlist = `Path o.Batch.file;
            id = Some o.Batch.file;
          }
      in
      Alcotest.(check string)
        (o.Batch.file ^ " bit-identical to single shot")
        (Json.to_string (Protocol.reply_to_json single))
        (Json.to_string
           (Protocol.reply_to_json { o.Batch.reply with Protocol.cached = false })))
    report.Batch.outcomes;
  Service.shutdown s

let test_batch_broken_netlist () =
  let dir = temp_dir "symref-batch-broken" in
  let write name text =
    let oc = open_out (Filename.concat dir name) in
    output_string oc text;
    close_out oc
  in
  write "a_good.cir" "rc\nr1 in out 1k\nc1 out 0 1u\nv1 in 0 ac 1\n.end\n";
  write "b_broken.cir" "broken\nr1 in out\n.end\n";
  write "c_good.cir" "rc2\nr1 in out 2k\nc1 out 0 1u\nv1 in 0 ac 1\n.end\n";
  let report = Batch.run dir in
  rm_rf dir;
  Alcotest.(check int) "three files" 3 report.Batch.files;
  Alcotest.(check int) "one failure" 1 report.Batch.failed;
  Alcotest.(check int) "two successes" 2 report.Batch.succeeded;
  let broken =
    List.find
      (fun (o : Batch.outcome) ->
        Filename.basename o.Batch.file = "b_broken.cir")
      report.Batch.outcomes
  in
  Alcotest.(check bool) "broken file is an error entry" true
    (broken.Batch.reply.Protocol.status = Protocol.Error);
  (match Protocol.error_message broken.Batch.reply with
  | Some m ->
      Alcotest.(check bool)
        ("diagnostic has file:line (" ^ m ^ ")")
        true
        (has_line_colon m)
  | None -> Alcotest.fail "error entry carries a message");
  (* The aggregate document reflects the failure too. *)
  match Json.member "failed" (Batch.report_to_json report) with
  | Some (Json.Num n) -> Alcotest.(check int) "json failed count" 1 (int_of_float n)
  | _ -> Alcotest.fail "report json has a failed field"

(* --- daemon end to end --- *)

let submit_text client ?id ?timeout_ms text =
  Serve.Client.request client
    (Protocol.Submit (reference_job ?id ?timeout_ms text))

let test_daemon_round_trip () =
  let dir = temp_dir "symref-serve-e2e" in
  let socket_path = Filename.concat dir "symref.sock" in
  let daemon = Serve.Daemon.create ~socket_path () in
  let daemon_thread = Thread.create Serve.Daemon.serve daemon in
  let text = ua741_text () in
  let cache = Service.cache (Serve.Daemon.service daemon) in
  Serve.Client.with_connection ~socket_path (fun c ->
      (match Json.member "hello" (Serve.Client.banner c) with
      | Some (Json.Str s) -> Alcotest.(check string) "banner" "symref" s
      | _ -> Alcotest.fail "daemon must greet with a hello banner");
      (* Reference job, then an identical resubmission: cache hit with a
         bit-identical payload and a hit-counter increment. *)
      let r1 = submit_text c ~id:"first" text in
      Alcotest.(check bool) "first ok" true (r1.Protocol.status = Protocol.Ok);
      Alcotest.(check bool) "first computed" false r1.Protocol.cached;
      let hits_before = Cache.hits cache in
      let r2 = submit_text c ~id:"second" text in
      Alcotest.(check bool) "second ok" true (r2.Protocol.status = Protocol.Ok);
      Alcotest.(check bool) "second from cache" true r2.Protocol.cached;
      Alcotest.(check int) "hit counter" (hits_before + 1) (Cache.hits cache);
      Alcotest.(check string) "bit-identical payload"
        (Json.to_string r1.Protocol.body)
        (Json.to_string r2.Protocol.body);
      (* Malformed line: structured protocol error, connection survives. *)
      let bad = Serve.Client.request c (Protocol.Submit Protocol.default_job) in
      Alcotest.(check bool) "empty submit is an error reply" true
        (bad.Protocol.status = Protocol.Error);
      (* Forced timeout on one connection while another completes. *)
      let fine =
        Thread.create
          (fun () ->
            Serve.Client.with_connection ~socket_path (fun c2 ->
                submit_text c2 ~id:"concurrent" text))
          ()
      in
      let late = submit_text c ~id:"late" ~timeout_ms:0 (text ^ "* poke\n") in
      Alcotest.(check bool) "expired deadline -> timeout status" true
        (late.Protocol.status = Protocol.Timeout);
      Thread.join fine;
      (* Stats op answers with live gauges. *)
      let stats = Serve.Client.request c Protocol.Stats in
      (match Json.member "cache" stats.Protocol.body with
      | Some (Json.Obj _) -> ()
      | _ -> Alcotest.fail "stats reply carries cache gauges");
      (* Graceful shutdown drains and answers before the socket dies. *)
      let bye = Serve.Client.request c Protocol.Shutdown in
      Alcotest.(check bool) "shutdown acknowledged" true
        (bye.Protocol.status = Protocol.Ok));
  Thread.join daemon_thread;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket_path);
  rm_rf dir

let suite =
  [
    ( "serve",
      [
        Alcotest.test_case "cache: LRU eviction under byte budget" `Quick
          test_cache_lru;
        Alcotest.test_case "cache: oversize, replace, clear" `Quick
          test_cache_oversize_and_replace;
        Alcotest.test_case "scheduler: bounded admission + backpressure" `Quick
          test_scheduler_backpressure;
        Alcotest.test_case "scheduler: job exception isolation" `Quick
          test_scheduler_exception_isolation;
        Alcotest.test_case "service: cache hit is bit-identical" `Quick
          test_service_cache_bit_identity;
        Alcotest.test_case "service: canonicalised cache key" `Quick
          test_service_formatting_invariance;
        Alcotest.test_case "service: timeout with concurrent success" `Quick
          test_service_timeout_and_isolation;
        Alcotest.test_case "service: parse failure is structured" `Quick
          test_service_error_isolation;
        Alcotest.test_case "batch: examples match single-shot runs" `Quick
          test_batch_examples_vs_single_shot;
        Alcotest.test_case "batch: broken netlist reported, sweep continues"
          `Quick test_batch_broken_netlist;
        Alcotest.test_case "daemon: socket round trip end to end" `Quick
          test_daemon_round_trip;
      ] );
  ]
