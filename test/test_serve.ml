(* The serve subsystem: cache, scheduler, service, batch, and an
   end-to-end daemon round trip over a real Unix domain socket. *)

module Serve = Symref_serve
module Protocol = Serve.Protocol
module Cache = Serve.Cache
module Scheduler = Serve.Scheduler
module Service = Serve.Service
module Batch = Serve.Batch
module Json = Symref_obs.Json

let netlist name = Filename.concat "../examples/netlists" name
let read_file f = In_channel.with_open_bin f In_channel.input_all

let temp_dir prefix = Filename.temp_dir prefix ""

let rm_rf dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

(* Recognise the "file:LINE: message" one-line diagnostic convention. *)
let has_line_colon m =
  let n = String.length m in
  let rec scan i =
    if i >= n then false
    else if m.[i] = ':' then begin
      let j = ref (i + 1) in
      while !j < n && m.[!j] >= '0' && m.[!j] <= '9' do
        incr j
      done;
      if !j > i + 1 && !j < n && m.[!j] = ':' then true else scan (i + 1)
    end
    else scan (i + 1)
  in
  scan 0

(* --- cache --- *)

let test_cache_lru () =
  (* Budget sized for exactly two 100-byte payloads with 2-byte keys. *)
  let c = Cache.create ~max_bytes:204 () in
  let p = String.make 100 'x' in
  Cache.add c ~key:"k1" p;
  Cache.add c ~key:"k2" p;
  Alcotest.(check int) "two resident" 2 (Cache.entries c);
  (* Touch k1 so k2 becomes least recently used, then overflow. *)
  Alcotest.(check (option string)) "k1 hit" (Some p) (Cache.find c ~key:"k1");
  Cache.add c ~key:"k3" p;
  Alcotest.(check (option string)) "k2 evicted" None (Cache.find c ~key:"k2");
  Alcotest.(check (option string)) "k1 kept" (Some p) (Cache.find c ~key:"k1");
  Alcotest.(check (option string)) "k3 kept" (Some p) (Cache.find c ~key:"k3");
  Alcotest.(check int) "one eviction" 1 (Cache.evictions c);
  Alcotest.(check int) "hits counted" 3 (Cache.hits c);
  Alcotest.(check int) "misses counted" 1 (Cache.misses c)

let test_cache_oversize_and_replace () =
  let c = Cache.create ~max_bytes:50 () in
  Cache.add c ~key:"big" (String.make 100 'x');
  Alcotest.(check int) "oversize payload not cached" 0 (Cache.entries c);
  Cache.add c ~key:"k" "one";
  Cache.add c ~key:"k" "two";
  Alcotest.(check int) "replace keeps one entry" 1 (Cache.entries c);
  Alcotest.(check (option string)) "replaced value" (Some "two")
    (Cache.find c ~key:"k");
  Cache.clear c;
  Alcotest.(check int) "clear empties" 0 (Cache.entries c);
  Alcotest.(check int) "clear resets bytes" 0 (Cache.bytes c)

(* --- scheduler --- *)

let test_scheduler_backpressure () =
  let s = Scheduler.create ~capacity:2 () in
  let gate = Mutex.create () in
  let open_gate = Condition.create () in
  let released = ref false in
  let blocked () =
    Mutex.lock gate;
    while not !released do
      Condition.wait open_gate gate
    done;
    Mutex.unlock gate;
    42
  in
  let t1 = Scheduler.submit s blocked in
  let t2 = Scheduler.submit s blocked in
  Alcotest.(check bool) "two admitted" true (t1 <> None && t2 <> None);
  Alcotest.(check bool) "third refused (queue full)" true
    (Scheduler.submit s blocked = None);
  Mutex.lock gate;
  released := true;
  Condition.broadcast open_gate;
  Mutex.unlock gate;
  (match t1 with
  | Some t ->
      Alcotest.(check bool) "job result" true (Scheduler.await t = Ok 42)
  | None -> ());
  Scheduler.drain s;
  Alcotest.(check int) "drained" 0 (Scheduler.pending s);
  Alcotest.(check bool) "slot free again" true
    (Scheduler.submit s (fun () -> 7) <> None);
  Scheduler.shutdown s;
  Alcotest.(check bool) "stopped scheduler refuses" true
    (Scheduler.submit s (fun () -> 7) = None)

let test_scheduler_exception_isolation () =
  let s = Scheduler.create ~capacity:4 () in
  let t = Scheduler.submit s (fun () -> failwith "boom") in
  (match t with
  | Some t -> (
      match Scheduler.await t with
      | Error (Failure m) -> Alcotest.(check string) "exn carried" "boom" m
      | _ -> Alcotest.fail "expected Error (Failure boom)")
  | None -> Alcotest.fail "submission refused");
  (* The worker survives the exception. *)
  match Scheduler.submit s (fun () -> 1 + 1) with
  | Some t -> Alcotest.(check bool) "worker alive" true (Scheduler.await t = Ok 2)
  | None -> Alcotest.fail "submission refused"

(* --- service --- *)

let ua741_text () = read_file (netlist "ua741.cir")

let reference_job ?id ?timeout_ms text =
  {
    Protocol.default_job with
    Protocol.id;
    netlist = `Text text;
    timeout_ms;
  }

let test_service_cache_bit_identity () =
  let s = Service.create () in
  let job = reference_job ~id:"a" (ua741_text ()) in
  let r1 = Service.run_job s job in
  let hits_before = Cache.hits (Service.cache s) in
  let r2 = Service.run_job s { job with Protocol.id = Some "b" } in
  Alcotest.(check bool) "first not cached" false r1.Protocol.cached;
  Alcotest.(check bool) "second cached" true r2.Protocol.cached;
  Alcotest.(check int) "hit counter incremented" (hits_before + 1)
    (Cache.hits (Service.cache s));
  Alcotest.(check string) "payload bit-identical"
    (Json.to_string r1.Protocol.body)
    (Json.to_string r2.Protocol.body);
  Service.shutdown s

let test_service_formatting_invariance () =
  (* The cache key hashes the canonicalised netlist: formatting, case and
     comment differences must hit the same entry. *)
  let s = Service.create () in
  let text = "rc\nr1 in out 1k\nc1 out 0 1u\nv1 in 0 ac 1\n.end\n" in
  let reformatted =
    "rc\n* a comment\nR1  IN  OUT  1K\n\nc1 out 0 1u\nV1 in 0 AC 1\n"
  in
  let r1 = Service.run_job s (reference_job text) in
  let r2 = Service.run_job s (reference_job reformatted) in
  Alcotest.(check bool) "canonicalised variant cached" true r2.Protocol.cached;
  Alcotest.(check string) "same payload"
    (Json.to_string r1.Protocol.body)
    (Json.to_string r2.Protocol.body);
  Service.shutdown s

let test_service_timeout_and_isolation () =
  let s = Service.create () in
  (* timeout_ms = 0: the deadline is already expired at admission, so the
     cooperative check fires deterministically on the first evaluation. *)
  let t = Service.submit s (reference_job ~id:"late" ~timeout_ms:0 (ua741_text ())) in
  let ok = Service.submit s (reference_job ~id:"fine" (ua741_text ())) in
  (match (t, ok) with
  | `Ticket late, `Ticket fine ->
      (match Scheduler.await late with
      | Ok r ->
          Alcotest.(check bool) "timeout status" true
            (r.Protocol.status = Protocol.Timeout);
          Alcotest.(check (option string)) "timeout kind" (Some "timeout")
            (Protocol.error_kind r)
      | Error _ -> Alcotest.fail "timeout must be a structured reply");
      (match Scheduler.await fine with
      | Ok r ->
          Alcotest.(check bool) "concurrent job unaffected" true
            (r.Protocol.status = Protocol.Ok)
      | Error _ -> Alcotest.fail "concurrent job must succeed")
  | _ -> Alcotest.fail "submissions refused");
  Service.shutdown s

let test_service_error_isolation () =
  let s = Service.create () in
  let broken = "broken\nr1 in out\n.end\n" in
  let r = Service.run_job s (reference_job broken) in
  Alcotest.(check bool) "parse failure is an error reply" true
    (r.Protocol.status = Protocol.Error);
  Alcotest.(check (option string)) "kind" (Some "parse") (Protocol.error_kind r);
  (match Protocol.error_message r with
  | Some m ->
      Alcotest.(check bool) "file:line one-liner" true
        (String.length m > 0
        && has_line_colon m)
  | None -> Alcotest.fail "parse error carries a message");
  (* The service survives and still computes. *)
  let ok = Service.run_job s (reference_job (ua741_text ())) in
  Alcotest.(check bool) "service alive after failure" true
    (ok.Protocol.status = Protocol.Ok);
  Service.shutdown s

(* --- batch --- *)

let test_batch_examples_vs_single_shot () =
  let report = Batch.run "../examples/netlists" in
  Alcotest.(check bool) "all example files succeed" true
    (report.Batch.failed = 0 && report.Batch.files >= 5);
  (* Each batch payload must be bit-identical to a fresh single-shot run of
     the same job. *)
  let s = Service.create () in
  List.iter
    (fun (o : Batch.outcome) ->
      let single =
        Service.run_job s
          {
            Protocol.default_job with
            Protocol.netlist = `Path o.Batch.file;
            id = Some o.Batch.file;
          }
      in
      Alcotest.(check string)
        (o.Batch.file ^ " bit-identical to single shot")
        (Json.to_string (Protocol.reply_to_json single))
        (Json.to_string
           (Protocol.reply_to_json { o.Batch.reply with Protocol.cached = false })))
    report.Batch.outcomes;
  Service.shutdown s

let test_batch_broken_netlist () =
  let dir = temp_dir "symref-batch-broken" in
  let write name text =
    let oc = open_out (Filename.concat dir name) in
    output_string oc text;
    close_out oc
  in
  write "a_good.cir" "rc\nr1 in out 1k\nc1 out 0 1u\nv1 in 0 ac 1\n.end\n";
  write "b_broken.cir" "broken\nr1 in out\n.end\n";
  write "c_good.cir" "rc2\nr1 in out 2k\nc1 out 0 1u\nv1 in 0 ac 1\n.end\n";
  let report = Batch.run dir in
  rm_rf dir;
  Alcotest.(check int) "three files" 3 report.Batch.files;
  Alcotest.(check int) "one failure" 1 report.Batch.failed;
  Alcotest.(check int) "two successes" 2 report.Batch.succeeded;
  let broken =
    List.find
      (fun (o : Batch.outcome) ->
        Filename.basename o.Batch.file = "b_broken.cir")
      report.Batch.outcomes
  in
  Alcotest.(check bool) "broken file is an error entry" true
    (broken.Batch.reply.Protocol.status = Protocol.Error);
  (match Protocol.error_message broken.Batch.reply with
  | Some m ->
      Alcotest.(check bool)
        ("diagnostic has file:line (" ^ m ^ ")")
        true
        (has_line_colon m)
  | None -> Alcotest.fail "error entry carries a message");
  (* The aggregate document reflects the failure too. *)
  match Json.member "failed" (Batch.report_to_json report) with
  | Some (Json.Num n) -> Alcotest.(check int) "json failed count" 1 (int_of_float n)
  | _ -> Alcotest.fail "report json has a failed field"

(* --- daemon end to end --- *)

let submit_text client ?id ?timeout_ms text =
  Serve.Client.request client
    (Protocol.Submit (reference_job ?id ?timeout_ms text))

let test_daemon_round_trip () =
  let dir = temp_dir "symref-serve-e2e" in
  let socket_path = Filename.concat dir "symref.sock" in
  let addr = Serve.Transport.Unix_sock socket_path in
  let daemon = Serve.Daemon.create ~listen:[ addr ] () in
  let daemon_thread = Thread.create Serve.Daemon.serve daemon in
  let text = ua741_text () in
  let cache = Service.cache (Serve.Daemon.service daemon) in
  Serve.Client.with_connection ~addr (fun c ->
      (match Json.member "hello" (Serve.Client.banner c) with
      | Some (Json.Str s) -> Alcotest.(check string) "banner" "symref" s
      | _ -> Alcotest.fail "daemon must greet with a hello banner");
      (* Reference job, then an identical resubmission: cache hit with a
         bit-identical payload and a hit-counter increment. *)
      let r1 = submit_text c ~id:"first" text in
      Alcotest.(check bool) "first ok" true (r1.Protocol.status = Protocol.Ok);
      Alcotest.(check bool) "first computed" false r1.Protocol.cached;
      let hits_before = Cache.hits cache in
      let r2 = submit_text c ~id:"second" text in
      Alcotest.(check bool) "second ok" true (r2.Protocol.status = Protocol.Ok);
      Alcotest.(check bool) "second from cache" true r2.Protocol.cached;
      Alcotest.(check int) "hit counter" (hits_before + 1) (Cache.hits cache);
      Alcotest.(check string) "bit-identical payload"
        (Json.to_string r1.Protocol.body)
        (Json.to_string r2.Protocol.body);
      (* Malformed line: structured protocol error, connection survives. *)
      let bad = Serve.Client.request c (Protocol.Submit Protocol.default_job) in
      Alcotest.(check bool) "empty submit is an error reply" true
        (bad.Protocol.status = Protocol.Error);
      (* Forced timeout on one connection while another completes. *)
      let fine =
        Thread.create
          (fun () ->
            Serve.Client.with_connection ~addr (fun c2 ->
                submit_text c2 ~id:"concurrent" text))
          ()
      in
      let late = submit_text c ~id:"late" ~timeout_ms:0 (text ^ "* poke\n") in
      Alcotest.(check bool) "expired deadline -> timeout status" true
        (late.Protocol.status = Protocol.Timeout);
      Thread.join fine;
      (* Stats op answers with live gauges. *)
      let stats = Serve.Client.request c Protocol.Stats in
      (match Json.member "cache" stats.Protocol.body with
      | Some (Json.Obj _) -> ()
      | _ -> Alcotest.fail "stats reply carries cache gauges");
      (* Graceful shutdown drains and answers before the socket dies. *)
      let bye = Serve.Client.request c Protocol.Shutdown in
      Alcotest.(check bool) "shutdown acknowledged" true
        (bye.Protocol.status = Protocol.Ok));
  Thread.join daemon_thread;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket_path);
  rm_rf dir

(* --- the fleet layer: transports, disk cache, router --- *)

let test_transport_parse () =
  let open Serve.Transport in
  (match parse "/tmp/symref.sock" with
  | Unix_sock p -> Alcotest.(check string) "path kept" "/tmp/symref.sock" p
  | Tcp _ -> Alcotest.fail "a path is a Unix socket");
  (match parse "127.0.0.1:7070" with
  | Tcp { host; port } ->
      Alcotest.(check string) "host" "127.0.0.1" host;
      Alcotest.(check int) "port" 7070 port
  | Unix_sock _ -> Alcotest.fail "host:port is TCP");
  (match parse ":8080" with
  | Tcp { host; port } ->
      Alcotest.(check string) "empty host is loopback" "127.0.0.1" host;
      Alcotest.(check int) "port" 8080 port
  | Unix_sock _ -> Alcotest.fail ":port is TCP");
  (match parse "sock:abc" with
  | Unix_sock p ->
      Alcotest.(check string) "non-numeric port is a path" "sock:abc" p
  | Tcp _ -> Alcotest.fail "a non-numeric suffix is not a port");
  (match parse "./v:1/symref.sock" with
  | Unix_sock _ -> ()
  | Tcp _ -> Alcotest.fail "a slash forces a path");
  (match parse "host:70000" with
  | Unix_sock _ -> ()
  | Tcp _ -> Alcotest.fail "an out-of-range port is not TCP");
  List.iter
    (fun spec ->
      Alcotest.(check string)
        ("round trip " ^ spec)
        spec
        (to_string (parse spec)))
    [ "/run/symref.sock"; "127.0.0.1:7070"; "localhost:1234" ]

let test_disk_cache_round_trip_and_corruption () =
  let dir = temp_dir "symref-disk-cache" in
  let dc = Serve.Disk_cache.create ~dir in
  let payload = "{\"answer\":42}" in
  let key = Digest.to_hex (Digest.string "job-a") in
  Alcotest.(check (option string)) "absent is a miss" None
    (Serve.Disk_cache.find dc ~key);
  Serve.Disk_cache.store dc ~key payload;
  Alcotest.(check (option string)) "round trip" (Some payload)
    (Serve.Disk_cache.find dc ~key);
  Alcotest.(check int) "one entry" 1 (Serve.Disk_cache.entries dc);
  Alcotest.(check bool) "bytes include the header" true
    (Serve.Disk_cache.bytes dc > String.length payload);
  let path = Filename.concat dir key in
  let full = read_file path in
  let rewrite content =
    let oc = open_out_bin path in
    output_string oc content;
    close_out oc
  in
  (* Truncation — a crash that somehow hit the final name — is a miss,
     never fatal. *)
  rewrite (String.sub full 0 (String.length full - 3));
  Alcotest.(check (option string)) "truncated entry is a miss" None
    (Serve.Disk_cache.find dc ~key);
  (* A flipped payload byte fails the digest check. *)
  let corrupt = Bytes.of_string full in
  Bytes.set corrupt (String.length full - 1) '\000';
  rewrite (Bytes.to_string corrupt);
  Alcotest.(check (option string)) "corrupt entry is a miss" None
    (Serve.Disk_cache.find dc ~key);
  (* So does a foreign file squatting on an entry name. *)
  rewrite "not a cache entry at all\n";
  Alcotest.(check (option string)) "foreign file is a miss" None
    (Serve.Disk_cache.find dc ~key);
  (* The next store atomically replaces the damaged file. *)
  Serve.Disk_cache.store dc ~key payload;
  Alcotest.(check (option string)) "store repairs the entry" (Some payload)
    (Serve.Disk_cache.find dc ~key);
  (* Keys that are not hex digests never touch the filesystem. *)
  Serve.Disk_cache.store dc ~key:"../escape" payload;
  Alcotest.(check (option string)) "invalid key is rejected" None
    (Serve.Disk_cache.find dc ~key:"../escape");
  Alcotest.(check int) "still one entry" 1 (Serve.Disk_cache.entries dc);
  rm_rf dir

let test_disk_cache_two_process_sharing () =
  let dir = temp_dir "symref-disk-share" in
  let payload = String.concat "," (List.init 64 string_of_int) in
  let key = Digest.to_hex (Digest.string "shared") in
  (* Park the domain pool so the forked child owns a single-domain
     runtime (a stop-the-world section in the child would otherwise wait
     forever on domains that only exist in the parent). *)
  Symref_core.Domain_pool.shutdown ();
  (match Unix.fork () with
  | 0 ->
      (* The child is a genuinely separate process with its own handle on
         the shared directory — the writer side of the fleet. *)
      let dc = Serve.Disk_cache.create ~dir in
      Serve.Disk_cache.store dc ~key payload;
      Unix._exit 0
  | pid ->
      let _, status = Unix.waitpid [] pid in
      Alcotest.(check bool) "writer exited cleanly" true
        (status = Unix.WEXITED 0);
      let dc = Serve.Disk_cache.create ~dir in
      Alcotest.(check (option string)) "reader sees the writer's entry"
        (Some payload)
        (Serve.Disk_cache.find dc ~key));
  rm_rf dir

let test_disk_cache_restart_replay () =
  let dir = temp_dir "symref-disk-restart" in
  let config =
    { Service.default_config with Service.disk_cache_dir = Some dir }
  in
  let text = ua741_text () in
  let s1 = Service.create ~config () in
  let r1 = Service.run_job s1 (reference_job text) in
  Alcotest.(check bool) "first run computes" false r1.Protocol.cached;
  Service.shutdown s1;
  (* A fresh service on the same directory — a full daemon restart: the
     in-memory LRU starts empty, the disk layer replays the entry. *)
  let s2 = Service.create ~config () in
  let r2 = Service.run_job s2 (reference_job text) in
  Alcotest.(check bool) "replayed from disk" true r2.Protocol.cached;
  Alcotest.(check string) "bit-identical across restart"
    (Json.to_string r1.Protocol.body)
    (Json.to_string r2.Protocol.body);
  (* The disk hit also warmed the LRU: the next submission hits memory. *)
  let hits_before = Cache.hits (Service.cache s2) in
  let r3 = Service.run_job s2 (reference_job text) in
  Alcotest.(check bool) "memory hit after warm" true r3.Protocol.cached;
  Alcotest.(check int) "LRU warmed by the disk hit" (hits_before + 1)
    (Cache.hits (Service.cache s2));
  Service.shutdown s2;
  rm_rf dir

let test_daemon_dual_transport_parity () =
  let dir = temp_dir "symref-serve-dual" in
  let socket_path = Filename.concat dir "symref.sock" in
  let listen =
    [
      Serve.Transport.Unix_sock socket_path;
      Serve.Transport.Tcp { host = "127.0.0.1"; port = 0 };
    ]
  in
  let daemon = Serve.Daemon.create ~listen () in
  let daemon_thread = Thread.create Serve.Daemon.serve daemon in
  let unix_addr, tcp_addr =
    match Serve.Daemon.addresses daemon with
    | [ u; t ] -> (u, t)
    | _ -> Alcotest.fail "daemon binds both listeners"
  in
  (match tcp_addr with
  | Serve.Transport.Tcp { port; _ } ->
      Alcotest.(check bool) "ephemeral port resolved" true (port > 0)
  | Serve.Transport.Unix_sock _ -> Alcotest.fail "second listener is TCP");
  let text = ua741_text () in
  let ask addr =
    Serve.Client.with_connection ~addr (fun c ->
        submit_text c ~id:"parity" text)
  in
  let over_unix = ask unix_addr in
  let over_tcp = ask tcp_addr in
  Alcotest.(check bool) "unix ok" true
    (over_unix.Protocol.status = Protocol.Ok);
  Alcotest.(check bool) "tcp ok" true (over_tcp.Protocol.status = Protocol.Ok);
  (* Same job, same daemon: the replies may differ only in the cached flag
     (the second submission hits the cache the first filled). *)
  Alcotest.(check string) "byte-identical over both transports"
    (Json.to_string
       (Protocol.reply_to_json { over_unix with Protocol.cached = false }))
    (Json.to_string
       (Protocol.reply_to_json { over_tcp with Protocol.cached = false }));
  Serve.Daemon.request_stop daemon;
  Thread.join daemon_thread;
  rm_rf dir

let test_client_version_mismatch () =
  let dir = temp_dir "symref-version" in
  let addr = Serve.Transport.Unix_sock (Filename.concat dir "old.sock") in
  let listener = Serve.Transport.listen addr in
  (* A fake daemon from the future: greets with a protocol this client
     does not speak.  connect must refuse before any request is sent. *)
  let impostor =
    Thread.create
      (fun () ->
        let fd, _ = Unix.accept listener in
        let oc = Unix.out_channel_of_descr fd in
        output_string oc
          "{\"hello\":\"symref\",\"version\":\"0.0.0\",\"protocol\":99}\n";
        flush oc;
        (try ignore (Unix.read fd (Bytes.create 1) 0 1)
         with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ())
      ()
  in
  (match Serve.Client.connect ~addr with
  | exception Serve.Errors.Error (Serve.Errors.Version_mismatch { got; want })
    ->
      Alcotest.(check int) "got the impostor's protocol" 99 got;
      Alcotest.(check int) "want ours" Protocol.protocol_version want
  | exception e ->
      Alcotest.fail ("unexpected exception: " ^ Printexc.to_string e)
  | c ->
      Serve.Client.close c;
      Alcotest.fail "connect must refuse a protocol mismatch");
  Thread.join impostor;
  Serve.Transport.close_listener addr listener;
  rm_rf dir

let test_router_determinism_and_failover () =
  let dir = temp_dir "symref-router" in
  let mk name =
    let addr = Serve.Transport.Unix_sock (Filename.concat dir name) in
    let d = Serve.Daemon.create ~listen:[ addr ] () in
    (addr, d, Thread.create Serve.Daemon.serve d)
  in
  let addr_a, daemon_a, thread_a = mk "a.sock" in
  let addr_b, daemon_b, thread_b = mk "b.sock" in
  let router = Serve.Router.create [ addr_a; addr_b ] in
  let text = ua741_text () in
  let job = reference_job ~id:"routed" text in
  (* The routing key and the ring walk are deterministic. *)
  let key = Serve.Router.job_key job in
  Alcotest.(check string) "job key stable" key (Serve.Router.job_key job);
  let walk = Serve.Router.route router key in
  Alcotest.(check (list int)) "walk covers each worker once" [ 0; 1 ]
    (List.sort compare walk);
  Alcotest.(check bool) "owner heads the walk" true
    (Serve.Router.owner router key
    = List.nth (Serve.Router.workers router) (List.hd walk));
  (* A forwarded reply is byte-identical to a direct service run. *)
  let standalone = Service.create () in
  let direct = Service.run_job standalone (reference_job ~id:"routed" text) in
  let via_router = Serve.Router.forward router job in
  Alcotest.(check bool) "forward ok" true
    (via_router.Protocol.status = Protocol.Ok);
  Alcotest.(check string) "router relays byte-identically"
    (Json.to_string
       (Protocol.reply_to_json { direct with Protocol.cached = false }))
    (Json.to_string
       (Protocol.reply_to_json { via_router with Protocol.cached = false }));
  (* Kill the key's owner: the walk fails over to the survivor and the
     job still completes with the same bytes. *)
  let owner_addr = Serve.Router.owner router key in
  let owner_daemon, owner_thread =
    if owner_addr = addr_a then (daemon_a, thread_a) else (daemon_b, thread_b)
  in
  let survivor_daemon, survivor_thread =
    if owner_addr = addr_a then (daemon_b, thread_b) else (daemon_a, thread_a)
  in
  Serve.Daemon.request_stop owner_daemon;
  Thread.join owner_thread;
  let failed_over = Serve.Router.forward router job in
  Alcotest.(check bool) "failover completes the job" true
    (failed_over.Protocol.status = Protocol.Ok);
  Alcotest.(check string) "failover reply byte-identical"
    (Json.to_string
       (Protocol.reply_to_json { direct with Protocol.cached = false }))
    (Json.to_string
       (Protocol.reply_to_json { failed_over with Protocol.cached = false }));
  (* The prober records the casualty; stats list both workers. *)
  Serve.Router.health_check router;
  (match Json.member "workers" (Serve.Router.stats_json router) with
  | Some (Json.Arr ws) ->
      Alcotest.(check int) "two workers in stats" 2 (List.length ws);
      let alive =
        List.filter
          (fun w -> Json.member "alive" w = Some (Json.Bool true))
          ws
      in
      Alcotest.(check int) "one survivor alive" 1 (List.length alive)
  | _ -> Alcotest.fail "router stats list the workers");
  Serve.Daemon.request_stop survivor_daemon;
  Thread.join survivor_thread;
  Service.shutdown standalone;
  rm_rf dir

let suite =
  [
    ( "serve",
      [
        Alcotest.test_case "cache: LRU eviction under byte budget" `Quick
          test_cache_lru;
        Alcotest.test_case "cache: oversize, replace, clear" `Quick
          test_cache_oversize_and_replace;
        Alcotest.test_case "scheduler: bounded admission + backpressure" `Quick
          test_scheduler_backpressure;
        Alcotest.test_case "scheduler: job exception isolation" `Quick
          test_scheduler_exception_isolation;
        Alcotest.test_case "service: cache hit is bit-identical" `Quick
          test_service_cache_bit_identity;
        Alcotest.test_case "service: canonicalised cache key" `Quick
          test_service_formatting_invariance;
        Alcotest.test_case "service: timeout with concurrent success" `Quick
          test_service_timeout_and_isolation;
        Alcotest.test_case "service: parse failure is structured" `Quick
          test_service_error_isolation;
        Alcotest.test_case "batch: examples match single-shot runs" `Quick
          test_batch_examples_vs_single_shot;
        Alcotest.test_case "batch: broken netlist reported, sweep continues"
          `Quick test_batch_broken_netlist;
        Alcotest.test_case "daemon: socket round trip end to end" `Quick
          test_daemon_round_trip;
        Alcotest.test_case "transport: address parsing" `Quick
          test_transport_parse;
        Alcotest.test_case "disk cache: round trip, corruption is a miss"
          `Quick test_disk_cache_round_trip_and_corruption;
        Alcotest.test_case "disk cache: two-process sharing" `Quick
          test_disk_cache_two_process_sharing;
        Alcotest.test_case "disk cache: bit-identical replay after restart"
          `Quick test_disk_cache_restart_replay;
        Alcotest.test_case "daemon: Unix and TCP replies byte-identical"
          `Quick test_daemon_dual_transport_parity;
        Alcotest.test_case "client: protocol version mismatch refused" `Quick
          test_client_version_mismatch;
        Alcotest.test_case "router: deterministic ring and live failover"
          `Quick test_router_determinism_and_failover;
      ] );
  ]
