(* The serve subsystem: cache, scheduler, service, batch, and an
   end-to-end daemon round trip over a real Unix domain socket. *)

module Serve = Symref_serve
module Protocol = Serve.Protocol
module Cache = Serve.Cache
module Scheduler = Serve.Scheduler
module Service = Serve.Service
module Batch = Serve.Batch
module Json = Symref_obs.Json

let netlist name = Filename.concat "../examples/netlists" name
let read_file f = In_channel.with_open_bin f In_channel.input_all

let temp_dir prefix = Filename.temp_dir prefix ""

let rm_rf dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

(* Recognise the "file:LINE: message" one-line diagnostic convention. *)
let has_line_colon m =
  let n = String.length m in
  let rec scan i =
    if i >= n then false
    else if m.[i] = ':' then begin
      let j = ref (i + 1) in
      while !j < n && m.[!j] >= '0' && m.[!j] <= '9' do
        incr j
      done;
      if !j > i + 1 && !j < n && m.[!j] = ':' then true else scan (i + 1)
    end
    else scan (i + 1)
  in
  scan 0

(* --- cache --- *)

let test_cache_lru () =
  (* Budget sized for exactly two 100-byte payloads with 2-byte keys. *)
  let c = Cache.create ~max_bytes:204 () in
  let p = String.make 100 'x' in
  Cache.add c ~key:"k1" p;
  Cache.add c ~key:"k2" p;
  Alcotest.(check int) "two resident" 2 (Cache.entries c);
  (* Touch k1 so k2 becomes least recently used, then overflow. *)
  Alcotest.(check (option string)) "k1 hit" (Some p) (Cache.find c ~key:"k1");
  Cache.add c ~key:"k3" p;
  Alcotest.(check (option string)) "k2 evicted" None (Cache.find c ~key:"k2");
  Alcotest.(check (option string)) "k1 kept" (Some p) (Cache.find c ~key:"k1");
  Alcotest.(check (option string)) "k3 kept" (Some p) (Cache.find c ~key:"k3");
  Alcotest.(check int) "one eviction" 1 (Cache.evictions c);
  Alcotest.(check int) "hits counted" 3 (Cache.hits c);
  Alcotest.(check int) "misses counted" 1 (Cache.misses c)

let test_cache_oversize_and_replace () =
  let c = Cache.create ~max_bytes:50 () in
  Cache.add c ~key:"big" (String.make 100 'x');
  Alcotest.(check int) "oversize payload not cached" 0 (Cache.entries c);
  Cache.add c ~key:"k" "one";
  Cache.add c ~key:"k" "two";
  Alcotest.(check int) "replace keeps one entry" 1 (Cache.entries c);
  Alcotest.(check (option string)) "replaced value" (Some "two")
    (Cache.find c ~key:"k");
  Cache.clear c;
  Alcotest.(check int) "clear empties" 0 (Cache.entries c);
  Alcotest.(check int) "clear resets bytes" 0 (Cache.bytes c)

(* --- scheduler --- *)

let ticket_of = function
  | Scheduler.Admitted t -> t
  | Scheduler.Shed _ -> Alcotest.fail "submission shed"
  | Scheduler.Stopped -> Alcotest.fail "submission refused (stopped)"

let is_admitted = function Scheduler.Admitted _ -> true | _ -> false
let is_shed = function Scheduler.Shed _ -> true | _ -> false

let test_scheduler_backpressure () =
  (* queue:0 = the pre-queue semantics — full capacity sheds immediately. *)
  let s = Scheduler.create ~capacity:2 ~queue:0 () in
  let gate = Mutex.create () in
  let open_gate = Condition.create () in
  let released = ref false in
  let blocked () =
    Mutex.lock gate;
    while not !released do
      Condition.wait open_gate gate
    done;
    Mutex.unlock gate;
    42
  in
  let t1 = Scheduler.submit s blocked in
  let t2 = Scheduler.submit s blocked in
  Alcotest.(check bool) "two admitted" true (is_admitted t1 && is_admitted t2);
  (match Scheduler.submit s blocked with
  | Scheduler.Shed { retry_after_ms } ->
      Alcotest.(check bool) "shed carries a positive retry hint" true
        (retry_after_ms > 0.)
  | _ -> Alcotest.fail "third submission must be shed (queue disabled)");
  Mutex.lock gate;
  released := true;
  Condition.broadcast open_gate;
  Mutex.unlock gate;
  Alcotest.(check bool) "job result" true
    (Scheduler.await (ticket_of t1) = Ok 42);
  Scheduler.drain s;
  Alcotest.(check int) "drained" 0 (Scheduler.pending s);
  Alcotest.(check bool) "slot free again" true
    (is_admitted (Scheduler.submit s (fun () -> 7)));
  Scheduler.shutdown s;
  Alcotest.(check bool) "stopped scheduler refuses" true
    (Scheduler.submit s (fun () -> 7) = Scheduler.Stopped)

let test_scheduler_queue_and_shed () =
  let s = Scheduler.create ~capacity:1 ~queue:2 () in
  let gate = Mutex.create () in
  let open_gate = Condition.create () in
  let released = ref false in
  let blocked v () =
    Mutex.lock gate;
    while not !released do
      Condition.wait open_gate gate
    done;
    Mutex.unlock gate;
    v
  in
  let t1 = Scheduler.submit s (blocked 1) in
  let t2 = Scheduler.submit s (blocked 2) in
  let t3 = Scheduler.submit s (blocked 3) in
  Alcotest.(check bool) "one running, two queued" true
    (is_admitted t1 && is_admitted t2 && is_admitted t3);
  Alcotest.(check int) "queued" 2 (Scheduler.queued s);
  Alcotest.(check int) "pending counts the queue" 3 (Scheduler.pending s);
  Alcotest.(check bool) "fourth shed (queue full)" true
    (is_shed (Scheduler.submit s (blocked 4)));
  Mutex.lock gate;
  released := true;
  Condition.broadcast open_gate;
  Mutex.unlock gate;
  (* FIFO: every queued job runs to completion in order. *)
  Alcotest.(check bool) "first" true (Scheduler.await (ticket_of t1) = Ok 1);
  Alcotest.(check bool) "second" true (Scheduler.await (ticket_of t2) = Ok 2);
  Alcotest.(check bool) "third" true (Scheduler.await (ticket_of t3) = Ok 3);
  Scheduler.shutdown s

let test_scheduler_deadline_shed_and_evict () =
  let s = Scheduler.create ~capacity:1 ~queue:4 () in
  let gate = Mutex.create () in
  let open_gate = Condition.create () in
  let released = ref false in
  let blocked () =
    Mutex.lock gate;
    while not !released do
      Condition.wait open_gate gate
    done;
    Mutex.unlock gate;
    0
  in
  let t1 = Scheduler.submit s blocked in
  Alcotest.(check bool) "holder admitted" true (is_admitted t1);
  (* A deadline already in the past cannot be met by any queue estimate:
     shed up front, never queued. *)
  let hopeless =
    Scheduler.submit ~deadline:(Unix.gettimeofday () -. 1.) s (fun () -> 9)
  in
  Alcotest.(check bool) "hopeless deadline shed up front" true
    (is_shed hopeless);
  (* A queued job whose deadline passes while it waits is evicted at
     dispatch, and its ticket says so. *)
  (* Slack (250 ms) comfortably above the 50 ms EWMA estimate: admitted. *)
  let doomed =
    Scheduler.submit ~deadline:(Unix.gettimeofday () +. 0.25) s (fun () -> 9)
  in
  Alcotest.(check bool) "near deadline admitted to the queue" true
    (is_admitted doomed);
  Unix.sleepf 0.3;
  Mutex.lock gate;
  released := true;
  Condition.broadcast open_gate;
  Mutex.unlock gate;
  (match Scheduler.await (ticket_of doomed) with
  | Error (Scheduler.Evicted { retry_after_ms }) ->
      Alcotest.(check bool) "eviction carries a positive retry hint" true
        (retry_after_ms > 0.)
  | Ok _ -> Alcotest.fail "doomed job must not run"
  | Error e -> Alcotest.fail ("unexpected error: " ^ Printexc.to_string e));
  Alcotest.(check bool) "holder finished" true
    (Scheduler.await (ticket_of t1) = Ok 0);
  Scheduler.shutdown s

let test_scheduler_exception_isolation () =
  let s = Scheduler.create ~capacity:4 () in
  let t = Scheduler.submit s (fun () -> failwith "boom") in
  (match Scheduler.await (ticket_of t) with
  | Error (Failure m) -> Alcotest.(check string) "exn carried" "boom" m
  | _ -> Alcotest.fail "expected Error (Failure boom)");
  (* The worker survives the exception. *)
  let t = Scheduler.submit s (fun () -> 1 + 1) in
  Alcotest.(check bool) "worker alive" true (Scheduler.await (ticket_of t) = Ok 2)

(* --- service --- *)

let ua741_text () = read_file (netlist "ua741.cir")

let reference_job ?id ?timeout_ms text =
  {
    Protocol.default_job with
    Protocol.id;
    netlist = `Text text;
    timeout_ms;
  }

let test_service_cache_bit_identity () =
  let s = Service.create () in
  let job = reference_job ~id:"a" (ua741_text ()) in
  let r1 = Service.run_job s job in
  let hits_before = Cache.hits (Service.cache s) in
  let r2 = Service.run_job s { job with Protocol.id = Some "b" } in
  Alcotest.(check bool) "first not cached" false r1.Protocol.cached;
  Alcotest.(check bool) "second cached" true r2.Protocol.cached;
  Alcotest.(check int) "hit counter incremented" (hits_before + 1)
    (Cache.hits (Service.cache s));
  Alcotest.(check string) "payload bit-identical"
    (Json.to_string r1.Protocol.body)
    (Json.to_string r2.Protocol.body);
  Service.shutdown s

let test_service_formatting_invariance () =
  (* The cache key hashes the canonicalised netlist: formatting, case and
     comment differences must hit the same entry. *)
  let s = Service.create () in
  let text = "rc\nr1 in out 1k\nc1 out 0 1u\nv1 in 0 ac 1\n.end\n" in
  let reformatted =
    "rc\n* a comment\nR1  IN  OUT  1K\n\nc1 out 0 1u\nV1 in 0 AC 1\n"
  in
  let r1 = Service.run_job s (reference_job text) in
  let r2 = Service.run_job s (reference_job reformatted) in
  Alcotest.(check bool) "canonicalised variant cached" true r2.Protocol.cached;
  Alcotest.(check string) "same payload"
    (Json.to_string r1.Protocol.body)
    (Json.to_string r2.Protocol.body);
  Service.shutdown s

let test_service_timeout_and_isolation () =
  let s = Service.create () in
  (* timeout_ms = 0: the deadline is already expired at admission, so the
     cooperative check fires deterministically on the first evaluation. *)
  let t = Service.submit s (reference_job ~id:"late" ~timeout_ms:0 (ua741_text ())) in
  let ok = Service.submit s (reference_job ~id:"fine" (ua741_text ())) in
  (match (t, ok) with
  | `Ticket late, `Ticket fine ->
      (match Scheduler.await late with
      | Ok r ->
          Alcotest.(check bool) "timeout status" true
            (r.Protocol.status = Protocol.Timeout);
          Alcotest.(check (option string)) "timeout kind" (Some "timeout")
            (Protocol.error_kind r)
      | Error _ -> Alcotest.fail "timeout must be a structured reply");
      (match Scheduler.await fine with
      | Ok r ->
          Alcotest.(check bool) "concurrent job unaffected" true
            (r.Protocol.status = Protocol.Ok)
      | Error _ -> Alcotest.fail "concurrent job must succeed")
  | _ -> Alcotest.fail "submissions refused");
  Service.shutdown s

let test_service_error_isolation () =
  let s = Service.create () in
  let broken = "broken\nr1 in out\n.end\n" in
  let r = Service.run_job s (reference_job broken) in
  Alcotest.(check bool) "parse failure is an error reply" true
    (r.Protocol.status = Protocol.Error);
  Alcotest.(check (option string)) "kind" (Some "parse") (Protocol.error_kind r);
  (match Protocol.error_message r with
  | Some m ->
      Alcotest.(check bool) "file:line one-liner" true
        (String.length m > 0
        && has_line_colon m)
  | None -> Alcotest.fail "parse error carries a message");
  (* The service survives and still computes. *)
  let ok = Service.run_job s (reference_job (ua741_text ())) in
  Alcotest.(check bool) "service alive after failure" true
    (ok.Protocol.status = Protocol.Ok);
  Service.shutdown s

(* --- batch --- *)

let test_batch_examples_vs_single_shot () =
  let report = Batch.run "../examples/netlists" in
  Alcotest.(check bool) "all example files succeed" true
    (report.Batch.failed = 0 && report.Batch.files >= 5);
  (* Each batch payload must be bit-identical to a fresh single-shot run of
     the same job. *)
  let s = Service.create () in
  List.iter
    (fun (o : Batch.outcome) ->
      let single =
        Service.run_job s
          {
            Protocol.default_job with
            Protocol.netlist = `Path o.Batch.file;
            id = Some o.Batch.file;
          }
      in
      Alcotest.(check string)
        (o.Batch.file ^ " bit-identical to single shot")
        (Json.to_string (Protocol.reply_to_json single))
        (Json.to_string
           (Protocol.reply_to_json { o.Batch.reply with Protocol.cached = false })))
    report.Batch.outcomes;
  Service.shutdown s

let test_batch_broken_netlist () =
  let dir = temp_dir "symref-batch-broken" in
  let write name text =
    let oc = open_out (Filename.concat dir name) in
    output_string oc text;
    close_out oc
  in
  write "a_good.cir" "rc\nr1 in out 1k\nc1 out 0 1u\nv1 in 0 ac 1\n.end\n";
  write "b_broken.cir" "broken\nr1 in out\n.end\n";
  write "c_good.cir" "rc2\nr1 in out 2k\nc1 out 0 1u\nv1 in 0 ac 1\n.end\n";
  let report = Batch.run dir in
  rm_rf dir;
  Alcotest.(check int) "three files" 3 report.Batch.files;
  Alcotest.(check int) "one failure" 1 report.Batch.failed;
  Alcotest.(check int) "two successes" 2 report.Batch.succeeded;
  let broken =
    List.find
      (fun (o : Batch.outcome) ->
        Filename.basename o.Batch.file = "b_broken.cir")
      report.Batch.outcomes
  in
  Alcotest.(check bool) "broken file is an error entry" true
    (broken.Batch.reply.Protocol.status = Protocol.Error);
  (match Protocol.error_message broken.Batch.reply with
  | Some m ->
      Alcotest.(check bool)
        ("diagnostic has file:line (" ^ m ^ ")")
        true
        (has_line_colon m)
  | None -> Alcotest.fail "error entry carries a message");
  (* The aggregate document reflects the failure too. *)
  match Json.member "failed" (Batch.report_to_json report) with
  | Some (Json.Num n) -> Alcotest.(check int) "json failed count" 1 (int_of_float n)
  | _ -> Alcotest.fail "report json has a failed field"

(* --- daemon end to end --- *)

let submit_text client ?id ?timeout_ms text =
  Serve.Client.request client
    (Protocol.Submit (reference_job ?id ?timeout_ms text))

let test_daemon_round_trip () =
  let dir = temp_dir "symref-serve-e2e" in
  let socket_path = Filename.concat dir "symref.sock" in
  let addr = Serve.Transport.Unix_sock socket_path in
  let daemon = Serve.Daemon.create ~listen:[ addr ] () in
  let daemon_thread = Thread.create Serve.Daemon.serve daemon in
  let text = ua741_text () in
  let cache = Service.cache (Serve.Daemon.service daemon) in
  Serve.Client.with_connection ~addr (fun c ->
      (match Json.member "hello" (Serve.Client.banner c) with
      | Some (Json.Str s) -> Alcotest.(check string) "banner" "symref" s
      | _ -> Alcotest.fail "daemon must greet with a hello banner");
      (* Reference job, then an identical resubmission: cache hit with a
         bit-identical payload and a hit-counter increment. *)
      let r1 = submit_text c ~id:"first" text in
      Alcotest.(check bool) "first ok" true (r1.Protocol.status = Protocol.Ok);
      Alcotest.(check bool) "first computed" false r1.Protocol.cached;
      let hits_before = Cache.hits cache in
      let r2 = submit_text c ~id:"second" text in
      Alcotest.(check bool) "second ok" true (r2.Protocol.status = Protocol.Ok);
      Alcotest.(check bool) "second from cache" true r2.Protocol.cached;
      Alcotest.(check int) "hit counter" (hits_before + 1) (Cache.hits cache);
      Alcotest.(check string) "bit-identical payload"
        (Json.to_string r1.Protocol.body)
        (Json.to_string r2.Protocol.body);
      (* Malformed line: structured protocol error, connection survives. *)
      let bad = Serve.Client.request c (Protocol.Submit Protocol.default_job) in
      Alcotest.(check bool) "empty submit is an error reply" true
        (bad.Protocol.status = Protocol.Error);
      (* Forced timeout on one connection while another completes. *)
      let fine =
        Thread.create
          (fun () ->
            Serve.Client.with_connection ~addr (fun c2 ->
                submit_text c2 ~id:"concurrent" text))
          ()
      in
      let late = submit_text c ~id:"late" ~timeout_ms:0 (text ^ "* poke\n") in
      Alcotest.(check bool) "expired deadline -> timeout status" true
        (late.Protocol.status = Protocol.Timeout);
      Thread.join fine;
      (* Stats op answers with live gauges. *)
      let stats = Serve.Client.request c Protocol.Stats in
      (match Json.member "cache" stats.Protocol.body with
      | Some (Json.Obj _) -> ()
      | _ -> Alcotest.fail "stats reply carries cache gauges");
      (* Graceful shutdown drains and answers before the socket dies. *)
      let bye = Serve.Client.request c Protocol.Shutdown in
      Alcotest.(check bool) "shutdown acknowledged" true
        (bye.Protocol.status = Protocol.Ok));
  Thread.join daemon_thread;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket_path);
  rm_rf dir

(* --- the fleet layer: transports, disk cache, router --- *)

let test_transport_parse () =
  let open Serve.Transport in
  (match parse "/tmp/symref.sock" with
  | Unix_sock p -> Alcotest.(check string) "path kept" "/tmp/symref.sock" p
  | Tcp _ -> Alcotest.fail "a path is a Unix socket");
  (match parse "127.0.0.1:7070" with
  | Tcp { host; port } ->
      Alcotest.(check string) "host" "127.0.0.1" host;
      Alcotest.(check int) "port" 7070 port
  | Unix_sock _ -> Alcotest.fail "host:port is TCP");
  (match parse ":8080" with
  | Tcp { host; port } ->
      Alcotest.(check string) "empty host is loopback" "127.0.0.1" host;
      Alcotest.(check int) "port" 8080 port
  | Unix_sock _ -> Alcotest.fail ":port is TCP");
  (match parse "sock:abc" with
  | Unix_sock p ->
      Alcotest.(check string) "non-numeric port is a path" "sock:abc" p
  | Tcp _ -> Alcotest.fail "a non-numeric suffix is not a port");
  (match parse "./v:1/symref.sock" with
  | Unix_sock _ -> ()
  | Tcp _ -> Alcotest.fail "a slash forces a path");
  (match parse "host:70000" with
  | Unix_sock _ -> ()
  | Tcp _ -> Alcotest.fail "an out-of-range port is not TCP");
  List.iter
    (fun spec ->
      Alcotest.(check string)
        ("round trip " ^ spec)
        spec
        (to_string (parse spec)))
    [ "/run/symref.sock"; "127.0.0.1:7070"; "localhost:1234" ]

let test_disk_cache_round_trip_and_corruption () =
  let dir = temp_dir "symref-disk-cache" in
  let dc = Serve.Disk_cache.create ~dir in
  let payload = "{\"answer\":42}" in
  let key = Digest.to_hex (Digest.string "job-a") in
  Alcotest.(check (option string)) "absent is a miss" None
    (Serve.Disk_cache.find dc ~key);
  Serve.Disk_cache.store dc ~key payload;
  Alcotest.(check (option string)) "round trip" (Some payload)
    (Serve.Disk_cache.find dc ~key);
  Alcotest.(check int) "one entry" 1 (Serve.Disk_cache.entries dc);
  Alcotest.(check bool) "bytes include the header" true
    (Serve.Disk_cache.bytes dc > String.length payload);
  let path = Filename.concat dir key in
  let full = read_file path in
  let rewrite content =
    let oc = open_out_bin path in
    output_string oc content;
    close_out oc
  in
  (* Truncation — a crash that somehow hit the final name — is a miss,
     never fatal. *)
  rewrite (String.sub full 0 (String.length full - 3));
  Alcotest.(check (option string)) "truncated entry is a miss" None
    (Serve.Disk_cache.find dc ~key);
  (* A flipped payload byte fails the digest check. *)
  let corrupt = Bytes.of_string full in
  Bytes.set corrupt (String.length full - 1) '\000';
  rewrite (Bytes.to_string corrupt);
  Alcotest.(check (option string)) "corrupt entry is a miss" None
    (Serve.Disk_cache.find dc ~key);
  (* So does a foreign file squatting on an entry name. *)
  rewrite "not a cache entry at all\n";
  Alcotest.(check (option string)) "foreign file is a miss" None
    (Serve.Disk_cache.find dc ~key);
  (* The next store atomically replaces the damaged file. *)
  Serve.Disk_cache.store dc ~key payload;
  Alcotest.(check (option string)) "store repairs the entry" (Some payload)
    (Serve.Disk_cache.find dc ~key);
  (* Keys that are not hex digests never touch the filesystem. *)
  Serve.Disk_cache.store dc ~key:"../escape" payload;
  Alcotest.(check (option string)) "invalid key is rejected" None
    (Serve.Disk_cache.find dc ~key:"../escape");
  Alcotest.(check int) "still one entry" 1 (Serve.Disk_cache.entries dc);
  rm_rf dir

let test_disk_cache_two_process_sharing () =
  let dir = temp_dir "symref-disk-share" in
  let payload = String.concat "," (List.init 64 string_of_int) in
  let key = Digest.to_hex (Digest.string "shared") in
  (* Park the domain pool so the forked child owns a single-domain
     runtime (a stop-the-world section in the child would otherwise wait
     forever on domains that only exist in the parent). *)
  Symref_core.Domain_pool.shutdown ();
  (match Unix.fork () with
  | 0 ->
      (* The child is a genuinely separate process with its own handle on
         the shared directory — the writer side of the fleet. *)
      let dc = Serve.Disk_cache.create ~dir in
      Serve.Disk_cache.store dc ~key payload;
      Unix._exit 0
  | pid ->
      let _, status = Unix.waitpid [] pid in
      Alcotest.(check bool) "writer exited cleanly" true
        (status = Unix.WEXITED 0);
      let dc = Serve.Disk_cache.create ~dir in
      Alcotest.(check (option string)) "reader sees the writer's entry"
        (Some payload)
        (Serve.Disk_cache.find dc ~key));
  rm_rf dir

let test_disk_cache_restart_replay () =
  let dir = temp_dir "symref-disk-restart" in
  let config =
    { Service.default_config with Service.disk_cache_dir = Some dir }
  in
  let text = ua741_text () in
  let s1 = Service.create ~config () in
  let r1 = Service.run_job s1 (reference_job text) in
  Alcotest.(check bool) "first run computes" false r1.Protocol.cached;
  Service.shutdown s1;
  (* A fresh service on the same directory — a full daemon restart: the
     in-memory LRU starts empty, the disk layer replays the entry. *)
  let s2 = Service.create ~config () in
  let r2 = Service.run_job s2 (reference_job text) in
  Alcotest.(check bool) "replayed from disk" true r2.Protocol.cached;
  Alcotest.(check string) "bit-identical across restart"
    (Json.to_string r1.Protocol.body)
    (Json.to_string r2.Protocol.body);
  (* The disk hit also warmed the LRU: the next submission hits memory. *)
  let hits_before = Cache.hits (Service.cache s2) in
  let r3 = Service.run_job s2 (reference_job text) in
  Alcotest.(check bool) "memory hit after warm" true r3.Protocol.cached;
  Alcotest.(check int) "LRU warmed by the disk hit" (hits_before + 1)
    (Cache.hits (Service.cache s2));
  Service.shutdown s2;
  rm_rf dir

let test_daemon_dual_transport_parity () =
  let dir = temp_dir "symref-serve-dual" in
  let socket_path = Filename.concat dir "symref.sock" in
  let listen =
    [
      Serve.Transport.Unix_sock socket_path;
      Serve.Transport.Tcp { host = "127.0.0.1"; port = 0 };
    ]
  in
  let daemon = Serve.Daemon.create ~listen () in
  let daemon_thread = Thread.create Serve.Daemon.serve daemon in
  let unix_addr, tcp_addr =
    match Serve.Daemon.addresses daemon with
    | [ u; t ] -> (u, t)
    | _ -> Alcotest.fail "daemon binds both listeners"
  in
  (match tcp_addr with
  | Serve.Transport.Tcp { port; _ } ->
      Alcotest.(check bool) "ephemeral port resolved" true (port > 0)
  | Serve.Transport.Unix_sock _ -> Alcotest.fail "second listener is TCP");
  let text = ua741_text () in
  let ask addr =
    Serve.Client.with_connection ~addr (fun c ->
        submit_text c ~id:"parity" text)
  in
  let over_unix = ask unix_addr in
  let over_tcp = ask tcp_addr in
  Alcotest.(check bool) "unix ok" true
    (over_unix.Protocol.status = Protocol.Ok);
  Alcotest.(check bool) "tcp ok" true (over_tcp.Protocol.status = Protocol.Ok);
  (* Same job, same daemon: the replies may differ only in the cached flag
     (the second submission hits the cache the first filled). *)
  Alcotest.(check string) "byte-identical over both transports"
    (Json.to_string
       (Protocol.reply_to_json { over_unix with Protocol.cached = false }))
    (Json.to_string
       (Protocol.reply_to_json { over_tcp with Protocol.cached = false }));
  Serve.Daemon.request_stop daemon;
  Thread.join daemon_thread;
  rm_rf dir

let test_client_version_mismatch () =
  let dir = temp_dir "symref-version" in
  let addr = Serve.Transport.Unix_sock (Filename.concat dir "old.sock") in
  let listener = Serve.Transport.listen addr in
  (* A fake daemon from the future: greets with a protocol this client
     does not speak.  connect must refuse before any request is sent. *)
  let impostor =
    Thread.create
      (fun () ->
        let fd, _ = Unix.accept listener in
        let oc = Unix.out_channel_of_descr fd in
        output_string oc
          "{\"hello\":\"symref\",\"version\":\"0.0.0\",\"protocol\":99}\n";
        flush oc;
        (try ignore (Unix.read fd (Bytes.create 1) 0 1)
         with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ())
      ()
  in
  (match Serve.Client.connect ~addr with
  | exception Serve.Errors.Error (Serve.Errors.Version_mismatch { got; want })
    ->
      Alcotest.(check int) "got the impostor's protocol" 99 got;
      Alcotest.(check int) "want ours" Protocol.protocol_version want
  | exception e ->
      Alcotest.fail ("unexpected exception: " ^ Printexc.to_string e)
  | c ->
      Serve.Client.close c;
      Alcotest.fail "connect must refuse a protocol mismatch");
  Thread.join impostor;
  Serve.Transport.close_listener addr listener;
  rm_rf dir

let test_router_determinism_and_failover () =
  let dir = temp_dir "symref-router" in
  let mk name =
    let addr = Serve.Transport.Unix_sock (Filename.concat dir name) in
    let d = Serve.Daemon.create ~listen:[ addr ] () in
    (addr, d, Thread.create Serve.Daemon.serve d)
  in
  let addr_a, daemon_a, thread_a = mk "a.sock" in
  let addr_b, daemon_b, thread_b = mk "b.sock" in
  let router = Serve.Router.create [ addr_a; addr_b ] in
  let text = ua741_text () in
  let job = reference_job ~id:"routed" text in
  (* The routing key and the ring walk are deterministic. *)
  let key = Serve.Router.job_key job in
  Alcotest.(check string) "job key stable" key (Serve.Router.job_key job);
  let walk = Serve.Router.route router key in
  Alcotest.(check (list int)) "walk covers each worker once" [ 0; 1 ]
    (List.sort compare walk);
  Alcotest.(check bool) "owner heads the walk" true
    (Serve.Router.owner router key
    = List.nth (Serve.Router.workers router) (List.hd walk));
  (* A forwarded reply is byte-identical to a direct service run. *)
  let standalone = Service.create () in
  let direct = Service.run_job standalone (reference_job ~id:"routed" text) in
  let via_router = Serve.Router.forward router job in
  Alcotest.(check bool) "forward ok" true
    (via_router.Protocol.status = Protocol.Ok);
  Alcotest.(check string) "router relays byte-identically"
    (Json.to_string
       (Protocol.reply_to_json { direct with Protocol.cached = false }))
    (Json.to_string
       (Protocol.reply_to_json { via_router with Protocol.cached = false }));
  (* Kill the key's owner: the walk fails over to the survivor and the
     job still completes with the same bytes. *)
  let owner_addr = Serve.Router.owner router key in
  let owner_daemon, owner_thread =
    if owner_addr = addr_a then (daemon_a, thread_a) else (daemon_b, thread_b)
  in
  let survivor_daemon, survivor_thread =
    if owner_addr = addr_a then (daemon_b, thread_b) else (daemon_a, thread_a)
  in
  Serve.Daemon.request_stop owner_daemon;
  Thread.join owner_thread;
  let failed_over = Serve.Router.forward router job in
  Alcotest.(check bool) "failover completes the job" true
    (failed_over.Protocol.status = Protocol.Ok);
  Alcotest.(check string) "failover reply byte-identical"
    (Json.to_string
       (Protocol.reply_to_json { direct with Protocol.cached = false }))
    (Json.to_string
       (Protocol.reply_to_json { failed_over with Protocol.cached = false }));
  (* The prober records the casualty; stats list both workers. *)
  Serve.Router.health_check router;
  (match Json.member "workers" (Serve.Router.stats_json router) with
  | Some (Json.Arr ws) ->
      Alcotest.(check int) "two workers in stats" 2 (List.length ws);
      let alive =
        List.filter
          (fun w -> Json.member "alive" w = Some (Json.Bool true))
          ws
      in
      Alcotest.(check int) "one survivor alive" 1 (List.length alive)
  | _ -> Alcotest.fail "router stats list the workers");
  Serve.Daemon.request_stop survivor_daemon;
  Thread.join survivor_thread;
  Service.shutdown standalone;
  rm_rf dir

(* --- resilience layer: jitter, breakers, supervisor, hedging, scrub --- *)

module Metrics = Symref_obs.Metrics
module Snapshot = Symref_obs.Snapshot
module Supervisor = Serve.Supervisor

let test_probe_jitter () =
  (* Pure in (salt, n) and bounded: the prober's and the supervisor's
     deterministic jitter — a replayed schedule must be identical. *)
  for salt = 0 to 5 do
    for n = 0 to 20 do
      let j = Serve.Router.probe_jitter ~salt n in
      Alcotest.(check bool) "jitter in [0.8, 1.2)" true (j >= 0.8 && j < 1.2);
      Alcotest.(check (float 0.)) "jitter pure" j
        (Serve.Router.probe_jitter ~salt n)
    done
  done;
  let all = List.init 32 (fun n -> Serve.Router.probe_jitter ~salt:1 n) in
  Alcotest.(check bool) "jitter varies across probes" true
    (List.exists (fun j -> Float.abs (j -. List.hd all) > 1e-6) all)

let rc_text name =
  Printf.sprintf "%s\nv1 in 0 ac 1\nr1 in out 2k\nc1 out 0 1n\n.end\n" name

let norm_reply r =
  Json.to_string (Protocol.reply_to_json { r with Protocol.cached = false })

let test_breaker_lifecycle () =
  let dir = temp_dir "symref-breaker" in
  let addr = Serve.Transport.Unix_sock (Filename.concat dir "w.sock") in
  Metrics.reset ();
  Metrics.enable ();
  let breaker =
    { Serve.Router.threshold = 2; cooldown_ms = 50.; max_cooldown_ms = 1_000. }
  in
  let router = Serve.Router.create ~breaker ~hedge:None [ addr ] in
  let job = reference_job ~id:"breaker" (rc_text "breaker") in
  (* No daemon behind the socket: failures accumulate to the threshold,
     then the circuit opens. *)
  let r1 = Serve.Router.forward router job in
  Alcotest.(check bool) "first failure relayed as error" true
    (r1.Protocol.status = Protocol.Error);
  Alcotest.(check bool) "below threshold stays closed" true
    (Serve.Router.breaker_state router 0 = `Closed);
  ignore (Serve.Router.forward router job);
  Alcotest.(check bool) "threshold opens the breaker" true
    (Serve.Router.breaker_state router 0 = `Open);
  (* Past the cooldown and against a live daemon, the half-open probe
     admits one request and its success closes the circuit. *)
  let d = Serve.Daemon.create ~listen:[ addr ] () in
  let th = Thread.create Serve.Daemon.serve d in
  Unix.sleepf 0.08;
  let r3 = Serve.Router.forward router job in
  Alcotest.(check bool) "half-open probe succeeds" true
    (r3.Protocol.status = Protocol.Ok);
  Alcotest.(check bool) "success closes the breaker" true
    (Serve.Router.breaker_state router 0 = `Closed);
  let snap = Snapshot.capture () in
  Alcotest.(check bool) "open/half-open/close all counted" true
    (snap.Snapshot.router_breaker_opens >= 1
    && snap.Snapshot.router_breaker_half_opens >= 1
    && snap.Snapshot.router_breaker_closes >= 1);
  Serve.Daemon.request_stop d;
  Thread.join th;
  Metrics.disable ();
  Metrics.reset ();
  rm_rf dir

let sh_spawn cmd =
  Unix.create_process "/bin/sh"
    [| "sh"; "-c"; cmd |]
    Unix.stdin Unix.stdout Unix.stderr

let test_supervisor_restart_and_giveup () =
  let config =
    {
      Supervisor.restart_delay_ms = 5.;
      max_restart_delay_ms = 10.;
      crash_budget = 2;
      crash_window_s = 60.;
    }
  in
  let sup =
    Supervisor.create ~config ~slots:1
      ~spawn:(fun ~slot:_ -> sh_spawn "exit 7")
      ()
  in
  Supervisor.start sup;
  (* Drive the supervision loop by hand with a far-future clock: every
     beat reaps the instantly-crashing child and restarts it, until the
     crash budget gives the slot up — no real backoff waiting needed. *)
  let deadline = Unix.gettimeofday () +. 10. in
  let rec drive () =
    match Supervisor.slot_state sup 0 with
    | Supervisor.Given_up -> ()
    | _ when Unix.gettimeofday () > deadline ->
        Alcotest.fail "supervisor never exhausted the crash budget"
    | _ ->
        Supervisor.step ~now:(Unix.gettimeofday () +. 3600.) sup;
        Unix.sleepf 0.01;
        drive ()
  in
  drive ();
  Alcotest.(check int) "budget-many restarts before giving up" 2
    (Supervisor.restarts sup);
  Supervisor.stop ~grace_s:0.1 sup

let test_supervisor_stop_terminates () =
  let sup =
    Supervisor.create ~slots:2
      ~spawn:(fun ~slot:_ -> sh_spawn "exec sleep 30")
      ()
  in
  Supervisor.start sup;
  let pids =
    List.filter_map
      (fun i ->
        match Supervisor.slot_state sup i with
        | Supervisor.Running pid -> Some pid
        | _ -> None)
      [ 0; 1 ]
  in
  Alcotest.(check int) "both slots running" 2 (List.length pids);
  let t0 = Unix.gettimeofday () in
  Supervisor.stop ~grace_s:0.5 sup;
  Alcotest.(check bool) "stop escalates and returns promptly" true
    (Unix.gettimeofday () -. t0 < 5.);
  List.iter
    (fun i ->
      Alcotest.(check bool) "slot wound down" true
        (Supervisor.slot_state sup i = Supervisor.Given_up))
    [ 0; 1 ];
  List.iter
    (fun pid ->
      let gone =
        match Unix.kill pid 0 with
        | () -> false
        | exception Unix.Unix_error (Unix.ESRCH, _, _) -> true
        | exception Unix.Unix_error _ -> true
      in
      Alcotest.(check bool) "child reaped, no zombie left" true gone)
    pids

let test_hedged_unhedged_identity () =
  let dir = temp_dir "symref-hedge" in
  let mk name =
    let addr = Serve.Transport.Unix_sock (Filename.concat dir name) in
    let d = Serve.Daemon.create ~listen:[ addr ] () in
    (addr, d, Thread.create Serve.Daemon.serve d)
  in
  let addr_a, daemon_a, thread_a = mk "a.sock" in
  let addr_b, daemon_b, thread_b = mk "b.sock" in
  let addrs = [ addr_a; addr_b ] in
  (* Zero hedge delay duplicates every submit: whichever copy wins the
     race, the reply must be the same bytes an unhedged walk produces. *)
  let hedged =
    Serve.Router.create
      ~hedge:
        (Some
           { Serve.Router.default_hedge with after_ms_min = 0.; after_ms_max = 0. })
      addrs
  in
  let unhedged = Serve.Router.create ~hedge:None addrs in
  Alcotest.(check (float 0.)) "hedge delay clamps to the forced max" 0.
    (Serve.Router.hedge_delay_ms hedged);
  for i = 0 to 3 do
    let job =
      reference_job ~id:"hedge" (rc_text (Printf.sprintf "hedge%d" i))
    in
    let ru = Serve.Router.forward unhedged job in
    let rh = Serve.Router.forward hedged job in
    Alcotest.(check bool) "unhedged ok" true (ru.Protocol.status = Protocol.Ok);
    Alcotest.(check bool) "hedged ok" true (rh.Protocol.status = Protocol.Ok);
    Alcotest.(check string) "hedged reply byte-identical to unhedged"
      (norm_reply ru) (norm_reply rh)
  done;
  List.iter
    (fun (d, th) ->
      Serve.Daemon.request_stop d;
      Thread.join th)
    [ (daemon_a, thread_a); (daemon_b, thread_b) ];
  rm_rf dir

let test_worker_flapping_chaos () =
  let dir = temp_dir "symref-flap" in
  let addr i = Serve.Transport.Unix_sock (Filename.concat dir (Printf.sprintf "w%d.sock" i)) in
  let start i =
    let d = Serve.Daemon.create ~listen:[ addr i ] () in
    (d, Thread.create Serve.Daemon.serve d)
  in
  let daemons = [| start 0; start 1 |] in
  Metrics.reset ();
  Metrics.enable ();
  let breaker =
    { Serve.Router.threshold = 1; cooldown_ms = 30.; max_cooldown_ms = 200. }
  in
  let router = Serve.Router.create ~breaker ~hedge:None [ addr 0; addr 1 ] in
  let job = reference_job ~id:"flap" (rc_text "flap") in
  let owner = List.hd (Serve.Router.route router (Serve.Router.job_key job)) in
  let baseline = Serve.Router.forward router job in
  Alcotest.(check bool) "healthy forward ok" true
    (baseline.Protocol.status = Protocol.Ok);
  (* Flap the owner twice: kill it mid-fleet, watch the failover reply stay
     byte-identical and the breaker open; restart it on the same socket and
     watch the half-open probe close the circuit again. *)
  for _round = 1 to 2 do
    let d, th = daemons.(owner) in
    Serve.Daemon.request_stop d;
    Thread.join th;
    let r = Serve.Router.forward router job in
    Alcotest.(check bool) "failover ok" true (r.Protocol.status = Protocol.Ok);
    Alcotest.(check string) "failover byte-identical" (norm_reply baseline)
      (norm_reply r);
    Alcotest.(check bool) "owner breaker open" true
      (Serve.Router.breaker_state router owner = `Open);
    daemons.(owner) <- start owner;
    Unix.sleepf 0.08;
    let r2 = Serve.Router.forward router job in
    Alcotest.(check bool) "recovered ok" true (r2.Protocol.status = Protocol.Ok);
    Alcotest.(check string) "recovered byte-identical" (norm_reply baseline)
      (norm_reply r2);
    Alcotest.(check bool) "owner breaker closed again" true
      (Serve.Router.breaker_state router owner = `Closed)
  done;
  let snap = Snapshot.capture () in
  Alcotest.(check bool) "flap transitions counted" true
    (snap.Snapshot.router_breaker_opens >= 2
    && snap.Snapshot.router_breaker_closes >= 2);
  Metrics.disable ();
  Metrics.reset ();
  Array.iter
    (fun (d, th) ->
      Serve.Daemon.request_stop d;
      Thread.join th)
    daemons;
  rm_rf dir

let test_disk_cache_scrub () =
  let dir = temp_dir "symref-scrub" in
  let plant name =
    Out_channel.with_open_bin (Filename.concat dir name) (fun oc ->
        Out_channel.output_string oc "junk")
  in
  plant ".tmp.123.abc";
  plant ".tmp.9999.def";
  Metrics.reset ();
  Metrics.enable ();
  let d = Serve.Disk_cache.create ~dir in
  let snap = Snapshot.capture () in
  Alcotest.(check int) "orphaned staging files scrubbed" 2
    snap.Snapshot.serve_disk_cache_scrubbed;
  Alcotest.(check bool) "tmp files gone from the directory" true
    (Array.for_all
       (fun f -> not (String.starts_with ~prefix:".tmp." f))
       (Sys.readdir dir));
  (* The scrubbed directory still works as a cache (keys are hex digests). *)
  let key = Digest.to_hex (Digest.string "scrub") in
  Serve.Disk_cache.store d ~key "payload";
  Alcotest.(check (option string)) "entry round-trips" (Some "payload")
    (Serve.Disk_cache.find d ~key);
  Metrics.disable ();
  Metrics.reset ();
  rm_rf dir

let test_client_version_compat () =
  (* An older daemon whose protocol is still within
     [min_protocol_version, protocol_version] must be accepted: rolling
     restarts mix versions, and v2 is a pure extension of v1. *)
  let dir = temp_dir "symref-compat" in
  let addr = Serve.Transport.Unix_sock (Filename.concat dir "v1.sock") in
  let listener = Serve.Transport.listen addr in
  let elder =
    Thread.create
      (fun () ->
        let fd, _ = Unix.accept listener in
        let oc = Unix.out_channel_of_descr fd in
        output_string oc
          (Printf.sprintf
             "{\"hello\":\"symref\",\"version\":\"0.0.0\",\"protocol\":%d}\n"
             Protocol.min_protocol_version);
        flush oc;
        (try ignore (Unix.read fd (Bytes.create 1) 0 1)
         with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ())
      ()
  in
  (match Serve.Client.connect ~addr with
  | c ->
      let got =
        match Json.member "protocol" (Serve.Client.banner c) with
        | Some v -> Json.to_int v
        | None -> -1
      in
      Alcotest.(check int) "banner carries the elder protocol"
        Protocol.min_protocol_version got;
      Serve.Client.close c
  | exception e ->
      Alcotest.fail
        ("compatible older protocol refused: " ^ Printexc.to_string e));
  Thread.join elder;
  Serve.Transport.close_listener addr listener;
  rm_rf dir

let test_hedged_fatal_no_hang () =
  (* Both ring candidates greet with an incompatible protocol: every
     exchange raises the non-transient [Version_mismatch].  The hedged
     race must still resolve — each racer reports the fatal outcome
     instead of dying with it — and the client gets a structured
     [protocol] reply rather than a hang (the review-flagged deadlock:
     an escaped racer exception left the coordinator in Condition.wait
     forever). *)
  let dir = temp_dir "symref-fatal" in
  let stop = ref false in
  let mk name =
    let addr = Serve.Transport.Unix_sock (Filename.concat dir name) in
    let listener = Serve.Transport.listen addr in
    let th =
      Thread.create
        (fun () ->
          (* Poll-accept like the real daemons: a blocking accept would
             never notice the listener closing under it and wedge the
             test's own Thread.join. *)
          let rec loop () =
            if not !stop then begin
              (match Unix.select [ listener ] [] [] 0.05 with
              | exception Unix.Unix_error _ -> ()
              | [], _, _ -> ()
              | _ :: _, _, _ -> (
                  match Unix.accept listener with
                  | fd, _ ->
                      let oc = Unix.out_channel_of_descr fd in
                      (try
                         output_string oc
                           "{\"hello\":\"symref\",\"version\":\"0.0.0\",\"protocol\":99}\n";
                         flush oc
                       with Sys_error _ | Unix.Unix_error _ -> ());
                      (try Unix.close fd with Unix.Unix_error _ -> ())
                  | exception Unix.Unix_error _ -> ()));
              loop ()
            end
          in
          loop ())
        ()
    in
    (addr, listener, th)
  in
  let a = mk "a.sock" and b = mk "b.sock" in
  let addr_of (addr, _, _) = addr in
  let router =
    Serve.Router.create
      ~hedge:
        (Some
           { Serve.Router.default_hedge with after_ms_min = 0.; after_ms_max = 0. })
      [ addr_of a; addr_of b ]
  in
  let reply =
    Serve.Router.forward router (reference_job ~id:"fatal" (rc_text "fatal"))
  in
  Alcotest.(check bool) "fatal race resolves to an error reply" true
    (reply.Protocol.status = Protocol.Error);
  Alcotest.(check (option string)) "reply kind names the protocol failure"
    (Some "protocol")
    (Protocol.error_kind reply);
  stop := true;
  List.iter
    (fun (addr, listener, th) ->
      Thread.join th;
      Serve.Transport.close_listener addr listener)
    [ a; b ];
  rm_rf dir

let test_breaker_untried_candidate_stays_open () =
  (* A recovered-but-untried candidate must keep its [Open] state: only a
     request actually sent claims the half-open probe slot.  (The flagged
     bug: merely filtering candidates flipped every expired-open breaker
     to Half_open, parking a recovered worker out of rotation.) *)
  let dir = temp_dir "symref-unclaimed" in
  let addr i =
    Serve.Transport.Unix_sock (Filename.concat dir (Printf.sprintf "w%d.sock" i))
  in
  let d = Serve.Daemon.create ~listen:[ addr 0 ] () in
  let th = Thread.create Serve.Daemon.serve d in
  let breaker =
    { Serve.Router.threshold = 1; cooldown_ms = 30.; max_cooldown_ms = 200. }
  in
  (* Worker 1 has no daemon behind it. *)
  let router = Serve.Router.create ~breaker ~hedge:None [ addr 0; addr 1 ] in
  let job_owned_by w =
    let rec find i =
      if i > 200 then Alcotest.fail "no job found for owner"
      else
        let job =
          reference_job ~id:"owner" (rc_text (Printf.sprintf "own%d" i))
        in
        if List.hd (Serve.Router.route router (Serve.Router.job_key job)) = w
        then job
        else find (i + 1)
    in
    find 0
  in
  (* Open the dead worker's breaker by routing one job it owns. *)
  let r = Serve.Router.forward router (job_owned_by 1) in
  Alcotest.(check bool) "failover still answers" true
    (r.Protocol.status = Protocol.Ok);
  Alcotest.(check bool) "dead owner's breaker open" true
    (Serve.Router.breaker_state router 1 = `Open);
  (* Past the cooldown, forward a job the live worker owns: worker 1 is a
     listed candidate but never contacted, so it must stay Open — not be
     flipped Half_open by candidate filtering. *)
  Unix.sleepf 0.06;
  let r2 = Serve.Router.forward router (job_owned_by 0) in
  Alcotest.(check bool) "live owner answers" true
    (r2.Protocol.status = Protocol.Ok);
  Alcotest.(check bool) "untried candidate keeps its Open state" true
    (Serve.Router.breaker_state router 1 = `Open);
  Serve.Daemon.request_stop d;
  Thread.join th;
  rm_rf dir

let test_scheduler_sweeper_eviction () =
  (* Every running slot is pinned and no further submission arrives: the
     background sweeper alone must evict the expired queued job, or the
     daemon's blocking await would hold its client past the deadline
     indefinitely.  Eviction counts only in [serve.evicted_jobs] —
     [serve.shed_jobs] stays the admission-shed path. *)
  Metrics.reset ();
  Metrics.enable ();
  let s = Scheduler.create ~capacity:1 ~queue:4 () in
  let gate = Mutex.create () in
  let open_gate = Condition.create () in
  let released = ref false in
  let blocked () =
    Mutex.lock gate;
    while not !released do
      Condition.wait open_gate gate
    done;
    Mutex.unlock gate;
    0
  in
  let holder = Scheduler.submit s blocked in
  Alcotest.(check bool) "holder admitted" true (is_admitted holder);
  let doomed =
    Scheduler.submit ~deadline:(Unix.gettimeofday () +. 0.15) s (fun () -> 9)
  in
  Alcotest.(check bool) "doomed admitted to the queue" true
    (is_admitted doomed);
  (* No slot frees and nothing else is submitted: only the sweeper can
     resolve the ticket.  [await] returning at all is the regression
     assertion. *)
  (match Scheduler.await (ticket_of doomed) with
  | Error (Scheduler.Evicted { retry_after_ms }) ->
      Alcotest.(check bool) "eviction carries a positive retry hint" true
        (retry_after_ms > 0.)
  | Ok _ -> Alcotest.fail "doomed job must not run"
  | Error e -> Alcotest.fail ("unexpected error: " ^ Printexc.to_string e));
  Alcotest.(check bool) "holder still running while doomed resolved" true
    (Scheduler.peek (ticket_of holder) = None);
  let snap = Snapshot.capture () in
  Alcotest.(check int) "eviction counted once" 1
    snap.Snapshot.serve_evicted_jobs;
  Alcotest.(check int) "eviction does not count as shed" 0
    snap.Snapshot.serve_shed_jobs;
  Mutex.lock gate;
  released := true;
  Condition.broadcast open_gate;
  Mutex.unlock gate;
  Alcotest.(check bool) "holder finished" true
    (Scheduler.await (ticket_of holder) = Ok 0);
  Scheduler.shutdown s;
  Metrics.disable ();
  Metrics.reset ()

let suite =
  [
    ( "serve",
      [
        Alcotest.test_case "cache: LRU eviction under byte budget" `Quick
          test_cache_lru;
        Alcotest.test_case "cache: oversize, replace, clear" `Quick
          test_cache_oversize_and_replace;
        Alcotest.test_case "scheduler: bounded admission + backpressure" `Quick
          test_scheduler_backpressure;
        Alcotest.test_case "scheduler: FIFO queue, shed above it" `Quick
          test_scheduler_queue_and_shed;
        Alcotest.test_case "scheduler: deadline shed up front, evict in queue"
          `Quick test_scheduler_deadline_shed_and_evict;
        Alcotest.test_case "scheduler: job exception isolation" `Quick
          test_scheduler_exception_isolation;
        Alcotest.test_case "service: cache hit is bit-identical" `Quick
          test_service_cache_bit_identity;
        Alcotest.test_case "service: canonicalised cache key" `Quick
          test_service_formatting_invariance;
        Alcotest.test_case "service: timeout with concurrent success" `Quick
          test_service_timeout_and_isolation;
        Alcotest.test_case "service: parse failure is structured" `Quick
          test_service_error_isolation;
        Alcotest.test_case "batch: examples match single-shot runs" `Quick
          test_batch_examples_vs_single_shot;
        Alcotest.test_case "batch: broken netlist reported, sweep continues"
          `Quick test_batch_broken_netlist;
        Alcotest.test_case "daemon: socket round trip end to end" `Quick
          test_daemon_round_trip;
        Alcotest.test_case "transport: address parsing" `Quick
          test_transport_parse;
        Alcotest.test_case "disk cache: round trip, corruption is a miss"
          `Quick test_disk_cache_round_trip_and_corruption;
        Alcotest.test_case "disk cache: two-process sharing" `Quick
          test_disk_cache_two_process_sharing;
        Alcotest.test_case "disk cache: bit-identical replay after restart"
          `Quick test_disk_cache_restart_replay;
        Alcotest.test_case "daemon: Unix and TCP replies byte-identical"
          `Quick test_daemon_dual_transport_parity;
        Alcotest.test_case "client: protocol version mismatch refused" `Quick
          test_client_version_mismatch;
        Alcotest.test_case "client: compatible older protocol accepted" `Quick
          test_client_version_compat;
        Alcotest.test_case "router: deterministic ring and live failover"
          `Quick test_router_determinism_and_failover;
        Alcotest.test_case "router: probe jitter is pure and bounded" `Quick
          test_probe_jitter;
        Alcotest.test_case "router: breaker closed/open/half-open lifecycle"
          `Quick test_breaker_lifecycle;
        Alcotest.test_case "router: hedged replies byte-identical to unhedged"
          `Quick test_hedged_unhedged_identity;
        Alcotest.test_case "router: flapping worker, breakers + byte identity"
          `Quick test_worker_flapping_chaos;
        Alcotest.test_case "router: hedged race over fatal workers resolves"
          `Quick test_hedged_fatal_no_hang;
        Alcotest.test_case "router: untried candidate keeps its Open breaker"
          `Quick test_breaker_untried_candidate_stays_open;
        Alcotest.test_case "scheduler: sweeper evicts with all slots pinned"
          `Quick test_scheduler_sweeper_eviction;
        Alcotest.test_case "supervisor: crash budget restarts then gives up"
          `Quick test_supervisor_restart_and_giveup;
        Alcotest.test_case "supervisor: stop escalates and reaps" `Quick
          test_supervisor_stop_terminates;
        Alcotest.test_case "disk cache: orphaned staging files scrubbed"
          `Quick test_disk_cache_scrub;
      ] );
  ]
