(* The reference-driven simplification service: circuit surgery
   (compact / short_element), SBG removal attribution, the pipeline's error
   certificates, the typed symbolic-dimension limit, and the serve
   integration with byte-identical disk-cache replay. *)

module N = Symref_circuit.Netlist
module Nodal = Symref_mna.Nodal
module Grid = Symref_numeric.Grid
module Random_net = Symref_circuit.Random_net
module Ota = Symref_circuit.Ota
module Ua741 = Symref_circuit.Ua741
module Sbg = Symref_symbolic.Sbg
module Sdet = Symref_symbolic.Sdet
module Budget = Symref_simplify.Budget
module Certificate = Symref_simplify.Certificate
module Pipeline = Symref_simplify.Pipeline
module Serve = Symref_serve
module Protocol = Serve.Protocol
module Service = Serve.Service
module Json = Symref_obs.Json

let netlist name = Filename.concat "../examples/netlists" name

let freqs = Grid.decades ~start:1. ~stop:1e8 ~per_decade:4
let budget () = Budget.v ~db:0.5 ~deg:2. ()

(* --- circuit surgery --- *)

let test_compact () =
  let b = N.Builder.create ~title:"compact" () in
  N.Builder.resistor b "r1" ~a:"in" ~b:"mid" 1e3;
  N.Builder.resistor b "r2" ~a:"mid" ~b:"0" 1e3;
  N.Builder.capacitor b "c1" ~a:"orphan_a" ~b:"orphan_b" 1e-12;
  let c = N.Builder.finish b in
  (* Removing c1 strands orphan_a/orphan_b; compact drops exactly them. *)
  let c = N.remove_element c "c1" in
  let cc = N.compact c in
  Alcotest.(check int) "two stranded nodes dropped" (N.node_count c - 2)
    (N.node_count cc);
  Alcotest.(check bool) "surviving names kept" true
    (N.node_id cc "mid" <> None && N.node_id cc "in" <> None);
  Alcotest.(check bool) "stranded name gone" true (N.node_id cc "orphan_a" = None);
  Alcotest.(check int) "elements untouched" (N.element_count c)
    (N.element_count cc)

let test_short_element () =
  let b = N.Builder.create ~title:"short" () in
  N.Builder.resistor b "rs" ~a:"in" ~b:"mid" 1e-3;
  N.Builder.resistor b "r1" ~a:"mid" ~b:"out" 1e3;
  N.Builder.capacitor b "c1" ~a:"out" ~b:"0" 1e-12;
  let c = N.Builder.finish b in
  let dim c =
    Nodal.dimension
      (Nodal.make c ~input:(Nodal.V_single "in") ~output:(Nodal.Out_node "out"))
  in
  let before = dim c in
  let shorted = N.short_element c "rs" in
  Alcotest.(check int) "series short drops one dimension" (before - 1)
    (dim shorted);
  Alcotest.(check bool) "shorted element gone" true
    (N.find_element shorted "rs" = None);
  Alcotest.(check bool) "merged node keeps the lower-id name" true
    (N.node_id shorted "in" <> None && N.node_id shorted "mid" = None)

let test_short_collapses_constraint () =
  let b = N.Builder.create ~title:"collapse" () in
  N.Builder.vsrc b "v1" ~p:"in" ~m:"0" 1.;
  N.Builder.resistor b "rg" ~a:"in" ~b:"0" 10.;
  N.Builder.resistor b "r1" ~a:"in" ~b:"out" 1e3;
  N.Builder.capacitor b "c1" ~a:"out" ~b:"0" 1e-12;
  let c = N.Builder.finish b in
  (* Shorting rg merges the driven node into ground, which would collapse
     the voltage source: a typed Invalid_argument, never a bad netlist. *)
  (match N.short_element c "rg" with
  | _ -> Alcotest.fail "shorting rg should have collapsed v1"
  | exception Invalid_argument _ -> ());
  (* Only two-terminal R/G/C/L elements can be shorted. *)
  match N.short_element c "v1" with
  | _ -> Alcotest.fail "shorting a source should be rejected"
  | exception Invalid_argument _ -> ()

(* --- SBG removal attribution --- *)

let test_sbg_removal_records () =
  let o =
    Sbg.prune Ota.circuit
      ~input:(Nodal.V_diff (Ota.input_p, Ota.input_n))
      ~output:(Nodal.Out_node Ota.output) ~freqs
  in
  Alcotest.(check (list string))
    "removals mirror the removed names"
    o.Sbg.removed
    (List.map (fun (r : Sbg.removal) -> r.Sbg.element) o.Sbg.removals);
  List.iter
    (fun (r : Sbg.removal) ->
      Alcotest.(check bool)
        (r.Sbg.element ^ " delta is non-negative")
        true
        (r.Sbg.delta_db >= 0. && r.Sbg.delta_deg >= 0.);
      Alcotest.(check bool)
        (r.Sbg.element ^ " cumulative error inside tolerance")
        true
        (r.Sbg.error_db <= 0.5 +. 1e-9 && r.Sbg.error_deg <= 5. +. 1e-9))
    o.Sbg.removals;
  match List.rev o.Sbg.removals with
  | [] -> Alcotest.fail "expected at least one OTA removal"
  | last :: _ ->
      Alcotest.(check (float 0.)) "last cumulative = outcome error (dB)"
        o.Sbg.error_db last.Sbg.error_db;
      Alcotest.(check (float 0.)) "last cumulative = outcome error (deg)"
        o.Sbg.error_deg last.Sbg.error_deg

(* --- pipeline + certificate --- *)

let test_pipeline_ota () =
  let r =
    Pipeline.run Ota.circuit
      ~input:(Nodal.V_diff (Ota.input_p, Ota.input_n))
      ~output:(Nodal.Out_node Ota.output) ~budget:(budget ()) ~freqs
  in
  Alcotest.(check bool) "strictly fewer terms" true
    (r.Pipeline.num_terms + r.Pipeline.den_terms
    < r.Pipeline.exact_num_terms + r.Pipeline.exact_den_terms);
  let cert = r.Pipeline.certificate in
  Alcotest.(check bool) "within budget" true cert.Certificate.within_budget;
  Alcotest.(check bool) "certificate re-checks" true (Certificate.check cert);
  Alcotest.(check int) "grid recorded" (Array.length freqs)
    cert.Certificate.grid_points;
  Alcotest.(check int) "three stage rows" 3
    (List.length cert.Certificate.stages);
  Alcotest.(check bool) "bands cover the grid" true
    (cert.Certificate.bands <> []);
  Alcotest.(check bool) "no fallback on the OTA" true (not r.Pipeline.fallback)

let test_certificate_check_rejects_tampering () =
  let r =
    Pipeline.run Ota.circuit
      ~input:(Nodal.V_diff (Ota.input_p, Ota.input_n))
      ~output:(Nodal.Out_node Ota.output) ~budget:(budget ()) ~freqs
  in
  let cert = r.Pipeline.certificate in
  let forged = { cert with Certificate.max_db = cert.Certificate.budget_db +. 1. } in
  Alcotest.(check bool) "inflated error breaks the verdict" false
    (Certificate.check forged)

let test_budget_validation () =
  let rejects f =
    match f () with
    | (_ : Budget.t) -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "zero dB rejected" true
    (rejects (fun () -> Budget.v ~db:0. ~deg:2. ()));
  Alcotest.(check bool) "negative degrees rejected" true
    (rejects (fun () -> Budget.v ~db:0.5 ~deg:(-1.) ()));
  Alcotest.(check bool) "oversubscribed split rejected" true
    (rejects (fun () ->
         Budget.v ~split:{ Budget.sbg = 0.6; sdg = 0.6; sag = 0.2 } ~db:0.5
           ~deg:2. ()));
  (* 6.02 dB and 90 degrees both translate to a relative epsilon of ~1. *)
  Alcotest.(check bool) "epsilon caps at the tighter bound" true
    (Float.abs (Budget.epsilon ~db:6.0206 ~deg:90. -. 1.) < 0.01);
  Alcotest.(check bool) "epsilon of a tight budget is small" true
    (Budget.epsilon ~db:0.1 ~deg:90. < 0.012)

let test_symbolic_limit_typed () =
  match
    Pipeline.run Ua741.circuit
      ~input:(Nodal.V_diff (Ua741.input_p, Ua741.input_n))
      ~output:(Nodal.Out_node Ua741.output) ~budget:(budget ()) ~freqs
  with
  | (_ : Pipeline.result) ->
      Alcotest.fail "the full uA741 should exceed the symbolic limit"
  | exception Pipeline.Symbolic_limit { dim; limit } ->
      Alcotest.(check int) "limit is Sdet's" Sdet.max_dimension limit;
      Alcotest.(check bool) "dimension above the limit" true (dim > limit)

(* --- serve integration --- *)

let simplify_job path =
  {
    Protocol.default_job with
    Protocol.netlist = `Path path;
    id = Some "simplify-test";
    analysis =
      Protocol.Simplify
        { budget_db = 0.5; budget_deg = 2.; from_hz = 1.; to_hz = 1e8;
          per_decade = 4 };
  }

let test_serve_symbolic_limit () =
  let service = Service.create () in
  let reply = Service.run_job service (simplify_job (netlist "ua741.cir")) in
  Service.shutdown service;
  Alcotest.(check bool) "error status" true
    (reply.Protocol.status = Protocol.Error);
  Alcotest.(check (option string)) "typed error kind"
    (Some "symbolic_limit") (Protocol.error_kind reply)

let test_serve_macro_certificate () =
  let service = Service.create () in
  let reply = Service.run_job service (simplify_job (netlist "ua741_macro.cir")) in
  Service.shutdown service;
  Alcotest.(check bool) "ok status" true (reply.Protocol.status = Protocol.Ok);
  let body = reply.Protocol.body in
  let cert =
    match Json.member "certificate" body with
    | Some c -> c
    | None -> Alcotest.fail "reply carries no certificate"
  in
  Alcotest.(check bool) "certified within budget" true
    (Json.member "within_budget" cert = Some (Json.Bool true));
  let int_at outer inner =
    match Option.bind (Json.member outer body) (Json.member inner) with
    | Some (Json.Num x) -> int_of_float x
    | _ -> Alcotest.fail (outer ^ "." ^ inner ^ " missing")
  in
  Alcotest.(check bool) "strictly fewer denominator terms" true
    (int_at "terms" "den" < int_at "exact_terms" "den")

let test_serve_disk_cache_replay () =
  let dir = Filename.temp_dir "symref-simplify-cache" "" in
  let config =
    { Service.default_config with Service.disk_cache_dir = Some dir }
  in
  let job = simplify_job (netlist "ua741_macro.cir") in
  let s1 = Service.create ~config () in
  let fresh = Service.run_job s1 job in
  Service.shutdown s1;
  (* A second service on the same directory answers from the disk cache:
     same payload bytes, with the cached flag raised. *)
  let s2 = Service.create ~config () in
  let replay = Service.run_job s2 job in
  Service.shutdown s2;
  Alcotest.(check bool) "fresh run not cached" false fresh.Protocol.cached;
  Alcotest.(check bool) "replay served from disk" true replay.Protocol.cached;
  Alcotest.(check string) "byte-identical payload"
    (Json.to_string fresh.Protocol.body)
    (Json.to_string replay.Protocol.body);
  Array.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  Unix.rmdir dir

let test_protocol_simplify_roundtrip () =
  let a =
    Protocol.Simplify
      { budget_db = 0.25; budget_deg = 1.5; from_hz = 10.; to_hz = 1e6;
        per_decade = 3 }
  in
  Alcotest.(check string) "canonical cache-key text"
    "simplify(0.25,1.5,10,1000000,3)"
    (Protocol.analysis_to_string a);
  let job = { Protocol.default_job with Protocol.analysis = a; netlist = `Text "t\n.end\n" } in
  match Protocol.request_of_json (Protocol.request_to_json (Protocol.Submit job)) with
  | Protocol.Submit job' ->
      Alcotest.(check string) "analysis round-trips"
        (Protocol.analysis_to_string a)
        (Protocol.analysis_to_string job'.Protocol.analysis)
  | _ -> Alcotest.fail "submit did not round-trip"

(* --- property: random gm-C nets are certified within budget --- *)

let prop_random_within_budget =
  QCheck2.Test.make
    ~name:"random nets simplify within the certified budget" ~count:6
    QCheck2.Gen.(pair (int_range 1 500) (int_range 3 5))
    (fun (seed, nodes) ->
      let c = Random_net.circuit ~seed ~nodes () in
      let input = Nodal.Vsrc_element "vin" in
      let output = Nodal.Out_node (Random_net.output_node ~seed ~nodes) in
      match Pipeline.run c ~input ~output ~budget:(budget ()) ~freqs with
      | r ->
          let cert = r.Pipeline.certificate in
          cert.Certificate.within_budget
          && Certificate.check cert
          && r.Pipeline.num_terms <= r.Pipeline.exact_num_terms
          && r.Pipeline.den_terms <= r.Pipeline.exact_den_terms
      | exception Pipeline.Symbolic_limit _ -> true)

let suite =
  [
    ( "simplify",
      [
        Alcotest.test_case "netlist compact" `Quick test_compact;
        Alcotest.test_case "netlist short_element" `Quick test_short_element;
        Alcotest.test_case "short collapse is typed" `Quick
          test_short_collapses_constraint;
        Alcotest.test_case "sbg removal attribution" `Quick
          test_sbg_removal_records;
        Alcotest.test_case "pipeline certifies the OTA" `Quick
          test_pipeline_ota;
        Alcotest.test_case "certificate rejects tampering" `Quick
          test_certificate_check_rejects_tampering;
        Alcotest.test_case "budget validation" `Quick test_budget_validation;
        Alcotest.test_case "symbolic limit is typed" `Quick
          test_symbolic_limit_typed;
        Alcotest.test_case "serve: symbolic_limit reply" `Quick
          test_serve_symbolic_limit;
        Alcotest.test_case "serve: macro certificate" `Quick
          test_serve_macro_certificate;
        Alcotest.test_case "serve: disk-cache replay" `Quick
          test_serve_disk_cache_replay;
        Alcotest.test_case "protocol: simplify round-trip" `Quick
          test_protocol_simplify_roundtrip;
      ]
      @ List.map QCheck_alcotest.to_alcotest [ prop_random_within_budget ] );
  ]
