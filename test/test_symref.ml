(* Deterministic seed for the property tests unless the caller overrides. *)
let () =
  if Sys.getenv_opt "QCHECK_SEED" = None then Unix.putenv "QCHECK_SEED" "414243"

let () =
  Alcotest.run "symref"
    (Test_extfloat.suite @ Test_stats_grid.suite @ Test_poly.suite
   @ Test_dft.suite @ Test_linalg.suite @ Test_circuit.suite @ Test_mna.suite
   @ Test_core.suite @ Test_spice.suite @ Test_symbolic.suite
   @ Test_roots.suite @ Test_random_net.suite @ Test_sensitivity.suite @ Test_transform.suite @ Test_sag.suite @ Test_margins_noise.suite @ Test_monte_carlo.suite @ Test_rational.suite @ Test_lc_ladder.suite @ Test_report.suite @ Test_paper_shape.suite @ Test_two_stage.suite @ Test_twoport.suite @ Test_locus.suite @ Test_properties.suite @ Test_verify.suite @ Test_tree_terms.suite @ Test_netlist_files.suite @ Test_fit.suite @ Test_filter_design.suite @ Test_transient.suite @ Test_nested.suite @ Test_obs.suite @ Test_json.suite @ Test_serve.suite @ Test_fault.suite
   @ Test_kernel.suite @ Test_batch.suite @ Test_simplify.suite)
