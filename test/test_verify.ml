(* Tests for the independent reference verification. *)

module Verify = Symref_core.Verify
module Adaptive = Symref_core.Adaptive
module Evaluator = Symref_core.Evaluator
module Nodal = Symref_mna.Nodal
module Ua741 = Symref_circuit.Ua741
module Ladder = Symref_circuit.Rc_ladder
module Ef = Symref_numeric.Extfloat

let den_evaluator circuit input output =
  Evaluator.of_nodal (Nodal.make circuit ~input ~output) ~num:false

let test_good_references_pass () =
  let ev =
    den_evaluator Ua741.circuit
      (Nodal.V_diff (Ua741.input_p, Ua741.input_n))
      (Nodal.Out_node Ua741.output)
  in
  let result = Adaptive.run ev in
  let report = Verify.check ev result in
  Alcotest.(check bool)
    (Printf.sprintf "741 references verify (residual %.2e over %d probes)"
       report.Verify.max_relative_residual report.Verify.probes)
    true report.Verify.passed;
  Alcotest.(check bool) "several probes" true (report.Verify.probes >= 6)

let test_corrupted_references_fail () =
  let ev =
    den_evaluator (Ladder.circuit ~spread:2. 8) (Nodal.Vsrc_element "vin")
      (Nodal.Out_node Ladder.output_node)
  in
  let result = Adaptive.run ev in
  Alcotest.(check bool) "honest result passes" true
    (Verify.check ev result).Verify.passed;
  (* Corrupt one mid-band coefficient by 1%: the probe must notice. *)
  let corrupted =
    {
      result with
      Adaptive.coeffs =
        Array.mapi
          (fun i c -> if i = 4 then Ef.mul_float c 1.01 else c)
          result.Adaptive.coeffs;
    }
  in
  let report = Verify.check ev corrupted in
  Alcotest.(check bool)
    (Printf.sprintf "corruption detected (residual %.2e)"
       report.Verify.max_relative_residual)
    false report.Verify.passed

let test_ua741_corruption_detected () =
  let ev =
    den_evaluator Ua741.circuit
      (Nodal.V_diff (Ua741.input_p, Ua741.input_n))
      (Nodal.Out_node Ua741.output)
  in
  let result = Adaptive.run ev in
  Alcotest.(check bool) "untouched 741 passes" true
    (Verify.check ev result).Verify.passed;
  (* Corrupt one established coefficient by 1%: the spread between
     consecutive 741 coefficients is ~1e6, so the probe must notice the
     defect through the residual, not through magnitude alone. *)
  let target =
    let rec find i =
      if i >= Array.length result.Adaptive.established then
        Alcotest.fail "no established coefficient to corrupt"
      else if
        result.Adaptive.established.(i)
        && not (Ef.is_zero result.Adaptive.coeffs.(i))
      then i
      else find (i + 1)
    in
    find 1
  in
  let corrupted =
    {
      result with
      Adaptive.coeffs =
        Array.mapi
          (fun i c -> if i = target then Ef.mul_float c 1.01 else c)
          result.Adaptive.coeffs;
    }
  in
  let report = Verify.check ev corrupted in
  Alcotest.(check bool)
    (Printf.sprintf "741 corruption at coefficient %d detected (residual %.2e)"
       target report.Verify.max_relative_residual)
    false report.Verify.passed

let suite =
  [
    ( "verify",
      [
        Alcotest.test_case "good references pass" `Quick test_good_references_pass;
        Alcotest.test_case "corrupted references fail" `Quick
          test_corrupted_references_fail;
        Alcotest.test_case "ua741: one corrupted coefficient detected" `Quick
          test_ua741_corruption_detected;
      ] );
  ]
